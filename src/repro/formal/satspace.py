"""Shared incremental SAT workspaces: warm solver state across checks.

The third member of the warm-state trio (beside
:class:`~repro.formal.workspace.BddWorkspace` and
:class:`~repro.formal.problems.CompiledProblemStore`).  A
:class:`SatWorkspace` keeps live :class:`~repro.formal.sat.Solver` +
:class:`~repro.formal.bmc.Unroller` pairs — *sessions* — alive across
portfolio stages and check jobs, so time-frame encodings, variable
numbering, and learned clauses survive from one assertion to the next
and from depth k to k+1.

Clustering and sessions
-----------------------

Assertions are grouped into *clusters* — chunks of one (module, vunit)'s
asserted properties, at most ``cluster_limit`` per chunk, compiled by
:func:`~repro.psl.compile.compile_cluster` into a single shared-AIG
multi-bad :class:`~repro.formal.transition.ClusterSystem`.  Each cluster
owns up to two sessions, keyed by

    (module digest, vunit digest, chunk index, mode)

with mode ``bmc-init`` (frame 0 constrained to the initial state — BMC
and induction's base leg) or ``step`` (frame 0 free — induction's step
leg).  Keys include the *vunit* digest because ``assume`` directives
become permanent unit clauses in the shared CNF: sessions may only be
shared between checks that agree on the constraint.

Group BMC and activation literals
---------------------------------

BMC runs *disjunctively* over the whole cluster
(:meth:`SatSession.bmc_group`): each depth asks one query — "is any
member's bad reachable at ``k``?" — and a group-UNSAT pins every
member with the proven permanent unit ``¬bad@k``; members are only
solved individually at depths where the group query is SAT.  The
per-member verdicts are cached on the session keyed by the bound, so
the cluster's remaining jobs answer without a solver call, and a
deeper re-ladder (iterative deepening portfolios) finds its shallow
depths already blocked — each depth is solved once per cluster, ever.

Induction-style per-assertion facts enter the shared CNF under a fresh
*activation literal* ``act`` instead:

- queries run as ``solve([act, bad@k])``,
- no-counterexample facts are guarded blocks ``(¬act ∨ ¬bad@k)``,
- induction's simple-path distinctness disjunctions are guarded and
  range over the assertion's own cone-of-influence latches.

``act`` only ever appears *negatively* in clauses, so no resolution can
derive the unit ``[act]`` and the retirement unit ``¬act`` added when a
job finishes can never conflict: it simply satisfies (deactivates) every
clause of the retired assertion, including learned clauses that depended
on its activation (which, per standard assumption-based CDCL, contain
``¬act``).  Unretired activations of *other* assertions are free
variables the solver may set to 0, so their guarded clauses never flip a
verdict — which is why verdicts and depths are identical to cold runs
and campaign reports stay byte-for-byte canonical.

What warm runs do NOT share is counterexample extraction: the shared
CNF's model lives in cluster-AIG literal numbering, while canonical
traces serialize solo-AIG input literals.  Engines therefore re-derive
failing traces with a cold run on the solo-compiled system at the
discovered depth — deterministic, hence byte-identical to the cold
trace — paying the extra solve only on the FAIL minority.

Budgets and memory valves
-------------------------

Sessions are re-armed with the current check's budget at lease time;
a :class:`~repro.formal.budget.BudgetExceeded` mid-solve leaves the
solver consistent and the session reusable.  Unlike the BDD workspace's
one-sided guarantee, warm CDCL search is *not* monotonically cheaper —
retained clauses usually save conflicts but can steer the heuristics
either way — so under a binding budget a warm run may TIMEOUT where a
cold run finished (and vice versa); campaign defaults keep budgets
non-binding.  ``max_sessions`` bounds live sessions LRU-fashion and
``max_session_clauses`` discards any session whose clause database
outgrew the valve.  Workspaces are plain per-process objects: executors
build one per worker, exactly like BDD workspaces and compile stores.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..rtl.netlist import FALSE
from .bmc import BmcResult, Unroller
from .budget import ResourceBudget
from .induction import _UniqueStates
from .problems import content_digest
from .sat import Solver, stats_delta
from .transition import ClusterSystem

MODE_BMC_INIT = "bmc-init"
MODE_STEP = "step"


class SatSession:
    """One live solver + unroller over a cluster's spine.

    Tracks per-assertion activation literals, which frames carry the
    shared constraint unit, and the memoized XOR difference definitions
    shared by the cluster's unique-states constraints.
    """

    def __init__(self, cluster: ClusterSystem, mode: str,
                 workspace: Optional["SatWorkspace"] = None) -> None:
        if mode not in (MODE_BMC_INIT, MODE_STEP):
            raise ValueError(f"unknown session mode {mode!r}")
        self.cluster = cluster
        self.mode = mode
        self.workspace = workspace
        self.solver = Solver()
        self.unroller = Unroller(cluster.spine, self.solver,
                                 constrain_init=(mode == MODE_BMC_INIT))
        self._acts: Dict[str, int] = {}
        self._uniq: Dict[str, _UniqueStates] = {}
        self._xor_memo: Dict[Tuple[int, int, int], int] = {}
        self._constrained: set = set()
        self._lease_frames = 0
        self._lease_reused: set = set()
        self._group_runs: Dict[int, Dict[str, Tuple[bool, int]]] = {}

    # ------------------------------------------------------------------
    def begin_lease(self, budget: Optional[ResourceBudget] = None) -> None:
        """Arm the session for the next check: swap in its budget and
        mark the frame horizon for reuse accounting."""
        self.solver.rearm(budget)
        self._lease_frames = len(self.unroller._frames)
        self._lease_reused = set()

    def frame(self, index: int):
        """The CNF context of frame ``index`` (building on demand),
        with built/reused accounting against the pre-lease horizon."""
        built = len(self.unroller._frames)
        ctx = self.unroller.frame(index)
        if self.workspace is not None:
            grown = len(self.unroller._frames) - built
            if grown:
                self.workspace.counters["frames_built"] += grown
            if index < self._lease_frames and index not in self._lease_reused:
                self._lease_reused.add(index)
                self.workspace.counters["frames_reused"] += 1
        return ctx

    def assert_constraint(self, index: int) -> None:
        """Assert the shared (vunit-wide) constraint at ``index`` —
        once: the unit is permanent, so repeats across assertions and
        jobs are skipped."""
        if index not in self._constrained:
            self.frame(index)
            self.unroller.assert_constraint(index)
            self._constrained.add(index)

    # ------------------------------------------------------------------
    def activation(self, assert_name: str) -> int:
        """The assertion's live activation literal, minting one on
        first use (and after a retirement)."""
        act = self._acts.get(assert_name)
        if act is None:
            act = self.solver.new_var() << 1
            self._acts[assert_name] = act
            if self.workspace is not None:
                self.workspace.counters["activations"] += 1
        return act

    def retire(self, assert_name: str) -> None:
        """Permanently deactivate the assertion's guarded clauses with
        the unit ``¬act``.  A later re-check mints a fresh activation;
        the old clauses stay behind, satisfied and inert."""
        act = self._acts.pop(assert_name, None)
        if act is None:
            return
        self._uniq.pop(assert_name, None)
        self.solver.add_clause([act ^ 1])
        if self.workspace is not None:
            self.workspace.counters["retirements"] += 1

    def bmc_group(self, assert_name: str, max_bound: int) -> BmcResult:
        """Bounded model checking for ``assert_name`` via one shared
        *disjunctive* ladder over the whole cluster (``bmc-init`` mode
        only).

        Instead of one solve per member per depth, each depth asks one
        question — "is *any* member's bad reachable at ``k``?" — by
        assuming a fresh literal ``or_k`` whose single defining clause
        ``(¬or_k ∨ bad_1@k ∨ ... ∨ bad_n@k)`` forces some live bad
        true.  A group-UNSAT at ``k`` proves every member individually
        UNSAT at ``k`` (exactly the fact cold per-member BMC
        establishes), so each surviving bad is pinned with the
        permanent unit ``¬bad_i@k`` — the same blocking fact cold BMC
        adds, valid session-wide because it was *proven*, not assumed.
        Only at a depth where the group query is SAT does the session
        fall back to individual member solves, verdicting the members
        whose bads are reachable at their (cold-identical) first
        failing depth and dropping them from later disjunctions.

        Verdicts and depths match per-member cold BMC by construction;
        counterexample *traces* are the caller's problem (engines
        re-derive them cold).  The per-member results are cached on the
        session keyed by ``max_bound``, so the cluster's remaining jobs
        (and repeat campaigns against a long-lived workspace) answer
        from the cache without a single solver call — that cache, plus
        the n-to-1 solve reduction on all-pass clusters, is where the
        shared workspace's headline savings come from.  A budget
        exhaustion mid-ladder caches nothing; the next lease restarts
        the ladder on the retained frames.
        """
        if self.mode != MODE_BMC_INIT:
            raise ValueError("bmc_group needs a bmc-init session")
        before = self.solver.stats_snapshot()
        verdicts = self._group_runs.get(max_bound)
        if verdicts is None:
            verdicts = self._run_bmc_group(max_bound)
            self._group_runs[max_bound] = verdicts
        elif self.workspace is not None:
            self.workspace.counters["group_hits"] += 1
        failed, bound = verdicts[assert_name]
        return BmcResult(failed, bound, None,
                         stats_delta(before, self.solver.stats_snapshot()))

    def _run_bmc_group(self, max_bound: int) -> Dict[str, Tuple[bool, int]]:
        solver = self.solver
        verdicts: Dict[str, Tuple[bool, int]] = {}
        active = []
        for name in self.cluster.members():
            if self.cluster.bads[name] == FALSE:
                # constant-safe: cold BMC never finds a violation
                verdicts[name] = (False, max_bound)
            else:
                active.append(name)
        if self.workspace is not None:
            self.workspace.counters["group_runs"] += 1
        for k in range(0, max_bound + 1):
            if not active:
                break
            self.assert_constraint(k)
            ctx = self.frame(k)
            bad_lits = {name: ctx.lit(self.cluster.bads[name])
                        for name in active}
            or_k = solver.new_var() << 1
            solver.add_clause([or_k ^ 1, *bad_lits.values()])
            if self.workspace is not None:
                self.workspace.counters["group_solves"] += 1
            if not solver.solve([or_k]):
                # no member's bad is reachable at k: pin every one with
                # the proven fact, exactly cold BMC's blocking clause
                for name in active:
                    solver.add_clause([bad_lits[name] ^ 1])
                continue
            # some bad is reachable: resolve each member individually
            # at this depth (its first possibly-failing depth — all
            # earlier depths were group-UNSAT)
            survivors = []
            for name in active:
                if solver.solve([bad_lits[name]]):
                    verdicts[name] = (True, k)
                else:
                    solver.add_clause([bad_lits[name] ^ 1])
                    survivors.append(name)
            active = survivors
        for name in active:
            verdicts[name] = (False, max_bound)
        return verdicts

    def unique_states(self, assert_name: str) -> _UniqueStates:
        """The assertion's guarded simple-path constraints (step mode),
        over its own cone-of-influence latches, sharing the session's
        XOR definition memo."""
        uniq = self._uniq.get(assert_name)
        if uniq is None:
            view = self.cluster.view(assert_name)
            uniq = _UniqueStates(
                view, self.unroller, self.solver,
                guard=self.activation(assert_name),
                latches=view.latches, xor_memo=self._xor_memo,
            )
            self._uniq[assert_name] = uniq
        return uniq


class SatBinding:
    """One check job's handle on a workspace: resolves the assertion's
    cluster lazily (a BDD-only portfolio never compiles one), leases
    sessions by mode, and retires the assertion's activations in every
    leased session when the job finishes."""

    def __init__(self, workspace: "SatWorkspace", module, vunit,
                 assert_name: str, module_digest: str = "",
                 vunit_digest: str = "", store=None) -> None:
        self.workspace = workspace
        self.module = module
        self.vunit = vunit
        self.assert_name = assert_name
        self._module_digest = module_digest
        self._vunit_digest = vunit_digest
        self._store = store
        self._cluster_key: Optional[Tuple[str, str, int]] = None
        self._cluster: Optional[ClusterSystem] = None
        self._leased: List[SatSession] = []

    def lease(self, mode: str,
              budget: Optional[ResourceBudget] = None) -> SatSession:
        """An armed session for ``mode``, creating or re-warming as
        needed."""
        if self._cluster is None:
            self._cluster_key, self._cluster = self.workspace._cluster_for(
                self.module, self.vunit, self.assert_name,
                self._module_digest, self._vunit_digest, self._store,
            )
        session = self.workspace._lease_session(
            self._cluster_key, mode, self._cluster, budget,
        )
        if not any(session is leased for leased in self._leased):
            self._leased.append(session)
        return session

    def retire(self) -> None:
        """End of job: deactivate this assertion everywhere it ran."""
        for session in self._leased:
            session.retire(self.assert_name)
        self._leased = []


class SatWorkspace:
    """Process-local pool of shared SAT sessions, LRU-bounded.

    Mirrors :class:`~repro.formal.workspace.BddWorkspace`'s contract:
    pure acceleration state, never part of job fingerprints, with
    ``stats()`` counters for telemetry and memory valves
    (``max_sessions`` LRU, ``max_session_clauses`` oversize discard).
    ``cluster_limit`` caps how many assertions of one (module, vunit)
    share a cluster; 1 disables clustering while keeping per-assertion
    frame/clause reuse across depths, stages, and repeat checks.
    """

    def __init__(self, max_sessions: Optional[int] = 8,
                 cluster_limit: int = 16,
                 max_session_clauses: Optional[int] = None) -> None:
        if max_sessions is not None and max_sessions < 1:
            raise ValueError("max_sessions must be >= 1 (or None)")
        if cluster_limit < 1:
            raise ValueError("cluster_limit must be >= 1")
        if max_session_clauses is not None and max_session_clauses < 1:
            raise ValueError("max_session_clauses must be >= 1 (or None)")
        self.max_sessions = max_sessions
        self.cluster_limit = cluster_limit
        self.max_session_clauses = max_session_clauses
        self._sessions: Dict[Tuple[str, str, int, str], SatSession] = {}
        self._clusters: Dict[Tuple[str, str, int], ClusterSystem] = {}
        self.counters: Dict[str, int] = {
            "leases": 0, "reuses": 0, "evictions": 0,
            "oversize_discards": 0, "activations": 0, "retirements": 0,
            "frames_built": 0, "frames_reused": 0, "clauses_retained": 0,
            "cluster_compiles": 0,
            "group_runs": 0, "group_solves": 0, "group_hits": 0,
        }

    # ------------------------------------------------------------------
    def bind(self, module, vunit, assert_name: str,
             module_digest: str = "", vunit_digest: str = "",
             store=None) -> SatBinding:
        """A job-scoped binding for one assertion.  ``store`` (a
        :class:`~repro.formal.problems.CompiledProblemStore`) lets
        cluster compilation share elaborated designs."""
        return SatBinding(self, module, vunit, assert_name,
                          module_digest=module_digest,
                          vunit_digest=vunit_digest, store=store)

    # ------------------------------------------------------------------
    def _cluster_for(self, module, vunit, assert_name: str,
                     module_digest: str, vunit_digest: str,
                     store) -> Tuple[Tuple[str, str, int], ClusterSystem]:
        from ..psl.compile import compile_cluster  # avoid upward import
        from ..rtl.verilog import emit_module

        module_key = module_digest or content_digest(emit_module(module))
        vunit_key = vunit_digest or content_digest(vunit.emit())
        names = [name for name, _ in vunit.asserted()]
        try:
            index = names.index(assert_name)
        except ValueError:
            raise ValueError(
                f"assertion {assert_name!r} is not asserted in vunit "
                f"{vunit.name!r}"
            ) from None
        chunk = index // self.cluster_limit
        key = (module_key, vunit_key, chunk)
        cluster = self._clusters.pop(key, None)
        if cluster is None:
            members = names[chunk * self.cluster_limit:
                            (chunk + 1) * self.cluster_limit]
            design = None
            if store is not None:
                design = store.design(module, module_digest=module_key)
            cluster = compile_cluster(module, vunit, members, design=design)
            self.counters["cluster_compiles"] += 1
            limit = self.max_sessions
            while limit is not None and len(self._clusters) >= limit:
                self._clusters.pop(next(iter(self._clusters)))
        self._clusters[key] = cluster
        return key, cluster

    def _lease_session(self, cluster_key: Tuple[str, str, int], mode: str,
                       cluster: ClusterSystem,
                       budget: Optional[ResourceBudget] = None) -> SatSession:
        key = (*cluster_key, mode)
        self.counters["leases"] += 1
        session = self._sessions.pop(key, None)
        if (session is not None and self.max_session_clauses is not None
                and session.solver.num_clauses() > self.max_session_clauses):
            self.counters["oversize_discards"] += 1
            session = None
        if session is not None:
            self.counters["reuses"] += 1
            self.counters["clauses_retained"] += len(session.solver._learned)
        else:
            while (self.max_sessions is not None
                   and len(self._sessions) >= self.max_sessions):
                self._sessions.pop(next(iter(self._sessions)))
                self.counters["evictions"] += 1
            session = SatSession(cluster, mode, workspace=self)
        self._sessions[key] = session
        session.begin_lease(budget)
        return session

    # ------------------------------------------------------------------
    def discard(self) -> None:
        """Drop every session and cluster (counters are retained)."""
        self._sessions.clear()
        self._clusters.clear()

    def stats(self) -> Dict[str, int]:
        """Current gauges plus the cumulative counters."""
        return {
            "sessions": len(self._sessions),
            "clusters": len(self._clusters),
            **self.counters,
        }
