"""Tseitin CNF encoding of AIG cones into a CDCL solver.

One :class:`CnfContext` owns the mapping from AIG literals to solver
literals for one combinational copy (one time-frame of an unrolling, or
a single combinational check).  AND nodes get the standard three-clause
Tseitin encoding.
"""

from __future__ import annotations

from typing import Dict

from ..rtl.netlist import Aig, FALSE, TRUE
from .sat import Solver


class CnfContext:
    """Maps one combinational copy of an AIG into a solver.

    Leaves (inputs and latches) are allocated fresh solver variables on
    first use unless the caller pre-binds them via :meth:`bind`.
    """

    def __init__(self, aig: Aig, solver: Solver) -> None:
        self.aig = aig
        self.solver = solver
        self._map: Dict[int, int] = {}  # AIG node index -> solver lit (pos)
        var = solver.new_var()
        self._true_lit = var << 1
        solver.add_clause([self._true_lit])

    @property
    def true_lit(self) -> int:
        return self._true_lit

    @property
    def false_lit(self) -> int:
        return self._true_lit ^ 1

    def bind(self, aig_lit: int, solver_lit: int) -> None:
        """Pre-bind a leaf (input/latch) node to an existing solver
        literal; ``aig_lit`` must be positive."""
        assert aig_lit & 1 == 0, "bind positive literals only"
        self._map[aig_lit >> 1] = solver_lit

    def is_bound(self, aig_lit: int) -> bool:
        return (aig_lit >> 1) in self._map

    # ------------------------------------------------------------------
    def lit(self, aig_lit: int) -> int:
        """Solver literal computing ``aig_lit``; encodes the cone on
        demand."""
        if aig_lit in (FALSE, TRUE):
            return self._resolved(aig_lit)
        if (aig_lit >> 1) not in self._map:
            self._encode_cone(aig_lit)
        return self._resolved(aig_lit)

    def _encode_cone(self, root: int) -> None:
        aig = self.aig
        solver = self.solver
        for index in aig.cone_nodes([root]):
            if index in self._map or index == 0:
                continue
            kind = aig.kind(index << 1)
            if kind in ("input", "latch"):
                self._map[index] = solver.new_var() << 1
                continue
            assert kind == "and"
            a, b = aig.fanin(index << 1)
            lit_a = self._resolved(a)
            lit_b = self._resolved(b)
            y = solver.new_var() << 1
            solver.add_clause([y ^ 1, lit_a])
            solver.add_clause([y ^ 1, lit_b])
            solver.add_clause([y, lit_a ^ 1, lit_b ^ 1])
            self._map[index] = y

    def _resolved(self, aig_lit: int) -> int:
        if aig_lit == FALSE:
            return self.false_lit
        if aig_lit == TRUE:
            return self.true_lit
        return self._map[aig_lit >> 1] ^ (aig_lit & 1)

    def value_of(self, aig_lit: int) -> int:
        """Model value of an AIG literal after SAT; leaves that never
        entered the encoding default to 0."""
        if aig_lit == FALSE:
            return 0
        if aig_lit == TRUE:
            return 1
        index = aig_lit >> 1
        if index not in self._map:
            return aig_lit & 1  # free leaf: any value works; pick 0
        return self.solver.value_of(self._map[index]) ^ (aig_lit & 1)
