"""CDCL SAT solver.

A from-scratch conflict-driven clause-learning solver in the MiniSat
lineage: two-literal watches, first-UIP learning with recursive clause
minimisation, VSIDS variable activity, phase saving, Luby restarts and
learned-clause database reduction.  It backs the BMC and k-induction
engines and the counterexample trace extraction.

Literal encoding: variable ``v`` (0-based) has positive literal ``2 v``
and negative literal ``2 v + 1``; ``lit ^ 1`` negates.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from .budget import BudgetExceeded, ResourceBudget

UNASSIGNED = -1


def lit_var(lit: int) -> int:
    return lit >> 1

def lit_sign(lit: int) -> int:
    """1 for a negated literal, 0 for positive."""
    return lit & 1


def lit_neg(lit: int) -> int:
    return lit ^ 1


class _Clause:
    """Clause with activity for database reduction."""

    __slots__ = ("lits", "learned", "activity")

    def __init__(self, lits: List[int], learned: bool) -> None:
        self.lits = lits
        self.learned = learned
        self.activity = 0.0


class _VarOrder:
    """Indexed max-heap over variable activity (VSIDS order)."""

    __slots__ = ("activity", "heap", "position")

    def __init__(self, activity: List[float]) -> None:
        self.activity = activity
        self.heap: List[int] = []
        self.position: List[int] = []

    def insert(self, var: int) -> None:
        while len(self.position) <= var:
            self.position.append(-1)
        if self.position[var] >= 0:
            return
        self.position[var] = len(self.heap)
        self.heap.append(var)
        self._sift_up(self.position[var])

    def bump(self, var: int) -> None:
        if var < len(self.position) and self.position[var] >= 0:
            self._sift_up(self.position[var])

    def pop(self) -> Optional[int]:
        if not self.heap:
            return None
        top = self.heap[0]
        last = self.heap.pop()
        self.position[top] = -1
        if self.heap:
            self.heap[0] = last
            self.position[last] = 0
            self._sift_down(0)
        return top

    def _sift_up(self, index: int) -> None:
        heap, pos, act = self.heap, self.position, self.activity
        var = heap[index]
        score = act[var]
        while index > 0:
            parent = (index - 1) >> 1
            if act[heap[parent]] >= score:
                break
            heap[index] = heap[parent]
            pos[heap[index]] = index
            index = parent
        heap[index] = var
        pos[var] = index

    def _sift_down(self, index: int) -> None:
        heap, pos, act = self.heap, self.position, self.activity
        size = len(heap)
        var = heap[index]
        score = act[var]
        while True:
            left = 2 * index + 1
            if left >= size:
                break
            best = left
            right = left + 1
            if right < size and act[heap[right]] > act[heap[left]]:
                best = right
            if act[heap[best]] <= score:
                break
            heap[index] = heap[best]
            pos[heap[index]] = index
            index = best
        heap[index] = var
        pos[var] = index


class Solver:
    """CDCL SAT solver with incremental assumptions.

    Usage::

        s = Solver()
        a, b = s.new_var(), s.new_var()
        s.add_clause([2 * a, 2 * b])        # a | b
        assert s.solve() is True
        assert s.solve([2 * a + 1, 2 * b + 1]) is False   # under ~a, ~b

    :meth:`solve` returns ``True`` (SAT), ``False`` (UNSAT), or raises
    :class:`BudgetExceeded` when the conflict budget runs out.
    """

    def __init__(self, budget: Optional[ResourceBudget] = None) -> None:
        self.budget = budget
        self._num_vars = 0
        self._clauses: List[_Clause] = []
        self._learned: List[_Clause] = []
        self._watches: List[List[_Clause]] = []
        self._assign: List[int] = []
        self._level: List[int] = []
        self._reason: List[Optional[_Clause]] = []
        self._trail: List[int] = []
        self._trail_lim: List[int] = []
        self._qhead = 0
        self._activity: List[float] = []
        self._var_inc = 1.0
        self._var_decay = 0.95
        self._cla_inc = 1.0
        self._cla_decay = 0.999
        self._phase: List[int] = []
        self._order = _VarOrder(self._activity)
        self._ok = True
        self.stats: Dict[str, int] = {
            "conflicts": 0, "decisions": 0, "propagations": 0,
            "restarts": 0, "learned": 0,
        }

    # ------------------------------------------------------------------
    # lifecycle for long-lived (workspace-shared) solvers
    # ------------------------------------------------------------------
    def rearm(self, budget: Optional[ResourceBudget] = None) -> None:
        """Swap in the next check's budget.  A solver retained across
        checks (see :mod:`repro.formal.satspace`) keeps its clauses,
        learned database, and activities — only the budget is
        per-check.  A :class:`BudgetExceeded` raised mid-solve leaves
        the solver consistent (the next ``solve`` cancels to the root
        level first), so re-arming is all a new lease needs."""
        self.budget = budget

    def stats_snapshot(self) -> Dict[str, int]:
        """The monotonic solve counters plus the current learned-clause
        database size — the uniform telemetry block every SAT-family
        engine reports."""
        return {**self.stats, "learned_db": len(self._learned)}

    def num_clauses(self) -> int:
        """Problem plus learned clauses currently attached (the memory
        valve the SAT workspace's oversize discard checks)."""
        return len(self._clauses) + len(self._learned)

    # ------------------------------------------------------------------
    # problem construction
    # ------------------------------------------------------------------
    def new_var(self) -> int:
        """Allocate a fresh variable; returns its 0-based index."""
        index = self._num_vars
        self._num_vars += 1
        self._watches.append([])
        self._watches.append([])
        self._assign.append(UNASSIGNED)
        self._level.append(0)
        self._reason.append(None)
        self._activity.append(0.0)
        self._phase.append(0)  # default polarity: assign false first
        self._order.insert(index)
        return index

    def add_clause(self, lits: Iterable[int]) -> bool:
        """Add a clause; returns False if the formula became trivially
        unsatisfiable."""
        if not self._ok:
            return False
        self._cancel_until(0)   # clause addition happens at the root level
        seen = set()
        out: List[int] = []
        for lit in lits:
            if lit_var(lit) >= self._num_vars:
                raise ValueError(f"literal {lit} references unknown variable")
            if lit in seen:
                continue
            if lit_neg(lit) in seen:
                return True  # tautology
            value = self._value(lit)
            if value == 1:
                return True  # already satisfied at level 0
            if value == 0:
                continue     # falsified at level 0; drop literal
            seen.add(lit)
            out.append(lit)
        if not out:
            self._ok = False
            return False
        if len(out) == 1:
            if not self._enqueue(out[0], None):
                self._ok = False
                return False
            conflict = self._propagate()
            if conflict is not None:
                self._ok = False
                return False
            return True
        clause = _Clause(out, learned=False)
        self._clauses.append(clause)
        self._attach(clause)
        return True

    # ------------------------------------------------------------------
    # solving
    # ------------------------------------------------------------------
    def solve(self, assumptions: Iterable[int] = ()) -> bool:
        """Solve under assumptions.  True = SAT, False = UNSAT."""
        if not self._ok:
            return False
        self._cancel_until(0)
        assumptions = list(assumptions)
        restart_index = 0
        conflict_limit = self._luby(restart_index) * 100

        conflicts_here = 0
        while True:
            conflict = self._propagate()
            if conflict is not None:
                self.stats["conflicts"] += 1
                conflicts_here += 1
                if self.budget is not None:
                    self.budget.charge_conflicts()
                if self._decision_level() == 0:
                    self._ok = False
                    return False
                learned, backtrack = self._analyze(conflict)
                self._cancel_until(backtrack)
                self._record_learned(learned)
                self._decay_activities()
                continue

            if conflicts_here >= conflict_limit:
                self.stats["restarts"] += 1
                restart_index += 1
                conflict_limit = self._luby(restart_index) * 100
                conflicts_here = 0
                self._cancel_until(0)
                if len(self._learned) > 4000 + 8 * self._num_vars:
                    self._reduce_db()
                continue

            # place assumptions, one decision level each
            if self._decision_level() < len(assumptions):
                lit = assumptions[self._decision_level()]
                value = self._value(lit)
                if value == 1:
                    self._new_decision_level()
                    continue
                if value == 0:
                    self._cancel_until(0)
                    return False
                self._new_decision_level()
                self._enqueue(lit, None)
                continue

            decision = self._pick_branch()
            if decision is None:
                return True  # full assignment
            self.stats["decisions"] += 1
            self._new_decision_level()
            self._enqueue(decision, None)

    def model(self) -> List[int]:
        """Values (0/1) per variable after a SAT answer."""
        return [1 if v == 1 else 0 for v in self._assign]

    def value_of(self, lit: int) -> int:
        """Model value of a literal after a SAT answer."""
        value = self._assign[lit_var(lit)]
        if value == UNASSIGNED:
            return 0
        return value ^ lit_sign(lit)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _value(self, lit: int) -> int:
        assigned = self._assign[lit_var(lit)]
        if assigned == UNASSIGNED:
            return UNASSIGNED
        return assigned ^ lit_sign(lit)

    def _decision_level(self) -> int:
        return len(self._trail_lim)

    def _new_decision_level(self) -> None:
        self._trail_lim.append(len(self._trail))

    def _enqueue(self, lit: int, reason: Optional[_Clause]) -> bool:
        value = self._value(lit)
        if value != UNASSIGNED:
            return value == 1
        var = lit_var(lit)
        self._assign[var] = 1 ^ lit_sign(lit)
        self._level[var] = self._decision_level()
        self._reason[var] = reason
        self._phase[var] = self._assign[var]
        self._trail.append(lit)
        return True

    def _attach(self, clause: _Clause) -> None:
        self._watches[lit_neg(clause.lits[0])].append(clause)
        self._watches[lit_neg(clause.lits[1])].append(clause)

    def _propagate(self) -> Optional[_Clause]:
        while self._qhead < len(self._trail):
            lit = self._trail[self._qhead]
            self._qhead += 1
            self.stats["propagations"] += 1
            watch_list = self._watches[lit]
            kept: List[_Clause] = []
            index = 0
            while index < len(watch_list):
                clause = watch_list[index]
                index += 1
                lits = clause.lits
                # make sure the falsified watch is lits[1]
                false_lit = lit_neg(lit)
                if lits[0] == false_lit:
                    lits[0], lits[1] = lits[1], lits[0]
                first = lits[0]
                if self._value(first) == 1:
                    kept.append(clause)
                    continue
                # search a new watch
                found = False
                for k in range(2, len(lits)):
                    if self._value(lits[k]) != 0:
                        lits[1], lits[k] = lits[k], lits[1]
                        self._watches[lit_neg(lits[1])].append(clause)
                        found = True
                        break
                if found:
                    continue
                kept.append(clause)
                if not self._enqueue(first, clause):
                    # conflict: keep remaining watches and report
                    kept.extend(watch_list[index:])
                    del watch_list[:]
                    watch_list.extend(kept)
                    self._qhead = len(self._trail)
                    return clause
            del watch_list[:]
            watch_list.extend(kept)
        return None

    def _analyze(self, conflict: _Clause) -> "tuple[List[int], int]":
        learned: List[int] = [0]  # placeholder for the asserting literal
        seen = [False] * self._num_vars
        counter = 0
        lit = None
        clause = conflict
        trail_index = len(self._trail) - 1
        current_level = self._decision_level()

        while True:
            self._bump_clause(clause)
            start = 0 if lit is None else 1
            for reason_lit in clause.lits[start:]:
                var = lit_var(reason_lit)
                if seen[var] or self._level[var] == 0:
                    continue
                seen[var] = True
                self._bump_var(var)
                if self._level[var] >= current_level:
                    counter += 1
                else:
                    learned.append(reason_lit)
            # pick next literal from trail
            while not seen[lit_var(self._trail[trail_index])]:
                trail_index -= 1
            lit = self._trail[trail_index]
            trail_index -= 1
            var = lit_var(lit)
            seen[var] = False
            counter -= 1
            if counter == 0:
                learned[0] = lit_neg(lit)
                break
            clause = self._reason[var]
            assert clause is not None
            if clause.lits[0] != lit:
                # normalise: reason clause's first literal is the implied one
                idx = clause.lits.index(lit)
                clause.lits[0], clause.lits[idx] = clause.lits[idx], clause.lits[0]

        # clause minimisation: drop literals implied by the rest
        minimized = [learned[0]]
        for candidate in learned[1:]:
            if not self._redundant(candidate, seen, learned):
                minimized.append(candidate)

        if len(minimized) == 1:
            backtrack = 0
        else:
            # second-highest decision level
            levels = sorted(
                (self._level[lit_var(l)] for l in minimized[1:]), reverse=True
            )
            backtrack = levels[0]
            # move a literal of the backtrack level into watch position 1
            for k in range(1, len(minimized)):
                if self._level[lit_var(minimized[k])] == backtrack:
                    minimized[1], minimized[k] = minimized[k], minimized[1]
                    break
        return minimized, backtrack

    def _redundant(self, lit: int, seen: List[bool],
                   learned: List[int]) -> bool:
        """Cheap non-recursive redundancy check: a literal is dropped if
        its reason clause consists only of other learned literals or
        level-0 assignments."""
        reason = self._reason[lit_var(lit)]
        if reason is None:
            return False
        learned_vars = {lit_var(l) for l in learned}
        for other in reason.lits:
            var = lit_var(other)
            if var == lit_var(lit):
                continue
            if self._level[var] != 0 and var not in learned_vars:
                return False
        return True

    def _record_learned(self, lits: List[int]) -> None:
        if len(lits) == 1:
            self._enqueue(lits[0], None)
            return
        clause = _Clause(lits, learned=True)
        clause.activity = self._cla_inc
        self._learned.append(clause)
        self.stats["learned"] += 1
        self._attach(clause)
        self._enqueue(lits[0], clause)

    def _cancel_until(self, level: int) -> None:
        if self._decision_level() <= level:
            return
        boundary = self._trail_lim[level]
        for lit in reversed(self._trail[boundary:]):
            var = lit_var(lit)
            self._assign[var] = UNASSIGNED
            self._reason[var] = None
            self._order.insert(var)
        del self._trail[boundary:]
        del self._trail_lim[level:]
        self._qhead = len(self._trail)

    def _pick_branch(self) -> Optional[int]:
        while True:
            var = self._order.pop()
            if var is None:
                return None
            if self._assign[var] == UNASSIGNED:
                # phase saving
                return (var << 1) | (1 ^ self._phase[var])

    def _bump_var(self, var: int) -> None:
        self._activity[var] += self._var_inc
        if self._activity[var] > 1e100:
            # rescaling preserves relative order, so the heap stays valid
            for v in range(self._num_vars):
                self._activity[v] *= 1e-100
            self._var_inc *= 1e-100
        self._order.bump(var)

    def _bump_clause(self, clause: _Clause) -> None:
        if not clause.learned:
            return
        clause.activity += self._cla_inc
        if clause.activity > 1e20:
            for c in self._learned:
                c.activity *= 1e-20
            self._cla_inc *= 1e-20

    def _decay_activities(self) -> None:
        self._var_inc /= self._var_decay
        self._cla_inc /= self._cla_decay

    def _reduce_db(self) -> None:
        """Drop the less active half of the learned clauses (those not
        currently acting as reasons)."""
        self._learned.sort(key=lambda c: c.activity)
        locked = {id(self._reason[lit_var(lit)]) for lit in self._trail
                  if self._reason[lit_var(lit)] is not None}
        keep: List[_Clause] = []
        drop: List[_Clause] = []
        half = len(self._learned) // 2
        for index, clause in enumerate(self._learned):
            if index < half and id(clause) not in locked and len(clause.lits) > 2:
                drop.append(clause)
            else:
                keep.append(clause)
        for clause in drop:
            self._detach(clause)
        self._learned = keep

    def _detach(self, clause: _Clause) -> None:
        for watch_lit in (lit_neg(clause.lits[0]), lit_neg(clause.lits[1])):
            watchers = self._watches[watch_lit]
            for index, watched in enumerate(watchers):
                if watched is clause:
                    watchers[index] = watchers[-1]
                    watchers.pop()
                    break

    @staticmethod
    def _luby(index: int) -> int:
        """Luby restart sequence: 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ...
        (MiniSat's iterative formulation)."""
        size, sequence = 1, 0
        while size < index + 1:
            sequence += 1
            size = 2 * size + 1
        while size - 1 != index:
            size = (size - 1) // 2
            sequence -= 1
            index %= size
        return 1 << sequence


def stats_delta(before: Dict[str, int], after: Dict[str, int]) -> Dict[str, int]:
    """Per-check counters of a shared solver: the monotonic counters are
    differenced between two :meth:`Solver.stats_snapshot` calls, while
    ``learned_db`` (a gauge) keeps its current value."""
    delta = {key: after[key] - before[key]
             for key in after if key != "learned_db"}
    delta["learned_db"] = after["learned_db"]
    return delta
