"""POBDD: partitioned-ROBDD reachability.

Reproduces the partitioning idea behind the paper's in-house engine
(Jain's "Breaking Barriers of BDD-based Verification by Partitioning",
IWLS 2004): the state space is split into windows by fixing a small set
of *window variables*, each window keeps its own reached-state BDD, and
images computed inside one window are redistributed to the windows they
land in.  Each per-window BDD is much smaller than the monolithic
reached set, trading more (cheap) iterations for lower peak node counts.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .bdd import FALSE
from .reachability import ReachResult, SymbolicModel


@dataclass
class PobddStats:
    """Diagnostics of one partitioned traversal."""

    windows: int
    rounds: int
    peak_window_size: int      # largest per-window reached-BDD (nodes)
    peak_manager_nodes: int    # manager growth (budget-relevant)


def choose_window_vars(model: SymbolicModel, count: int) -> List[int]:
    """Pick window variables: the current-state variables appearing in
    the most transition partitions (highest connectivity), which splits
    the reached set where it is most entangled."""
    frequency: Dict[int, int] = {}
    for _, relation in model.partitions:
        for var in model.bdd.support(relation):
            if var in model._curr_set:
                frequency[var] = frequency.get(var, 0) + 1
    ranked = sorted(model._curr_set,
                    key=lambda v: (-frequency.get(v, 0), v))
    return ranked[:count]


def pobdd_reach(model: SymbolicModel, num_window_vars: int = 2,
                max_rounds: Optional[int] = None) -> "Tuple[ReachResult, PobddStats]":
    """Partitioned forward reachability.

    Returns the usual :class:`ReachResult` plus partitioning statistics.
    """
    bdd = model.bdd
    window_vars = choose_window_vars(model, num_window_vars)
    cubes = [
        bdd.cube(dict(zip(window_vars, bits)))
        for bits in itertools.product((0, 1), repeat=len(window_vars))
    ]
    bad = model.bad_states()

    reached: List[int] = [bdd.and_(model.init, cube) for cube in cubes]
    frontier: List[int] = list(reached)
    rounds = 0
    peak_window = max((bdd.size(r) for r in reached), default=0)
    peak_manager = bdd.num_nodes()

    # depth bookkeeping: the round in which each window first received
    # its current frontier gives a bound on counterexample depth
    while True:
        for window, front in enumerate(frontier):
            if front != FALSE and bdd.and_(front, bad) != FALSE:
                stats = PobddStats(len(cubes), rounds, peak_window,
                                   peak_manager)
                return (
                    ReachResult(False, rounds, rounds, peak_manager, "pobdd"),
                    stats,
                )
        if all(front == FALSE for front in frontier):
            stats = PobddStats(len(cubes), rounds, peak_window, peak_manager)
            return (
                ReachResult(True, None, rounds, peak_manager, "pobdd"),
                stats,
            )
        if max_rounds is not None and rounds >= max_rounds:
            stats = PobddStats(len(cubes), rounds, peak_window, peak_manager)
            return (
                ReachResult(False, None, rounds, peak_manager, "pobdd"),
                stats,
            )
        rounds += 1
        # one synchronous round: image every window's frontier, then
        # redistribute the union into the windows
        images = [
            model.image(front) if front != FALSE else FALSE
            for front in frontier
        ]
        union = bdd.or_many(images)
        new_frontier: List[int] = []
        for window, cube in enumerate(cubes):
            landed = bdd.and_(union, cube)
            fresh = bdd.and_(landed, bdd.not_(reached[window]))
            reached[window] = bdd.or_(reached[window], fresh)
            new_frontier.append(fresh)
            peak_window = max(peak_window, bdd.size(reached[window]))
        frontier = new_frontier
        peak_manager = max(peak_manager, bdd.num_nodes())
