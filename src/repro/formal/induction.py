"""k-induction: SAT-based unbounded safety proof.

Standard temporal induction (Sheeran et al.): the property holds if

- **base**: no counterexample of length <= k from the initial state, and
- **step**: no path of k+1 constraint-satisfying transitions where the
  property holds for the first k frames and fails at frame k+1, starting
  from *any* state.

``unique_states=True`` adds simple-path (pairwise state-distinctness)
constraints, making the method complete: k eventually reaches the
design's recurrence diameter.  The paper's leaf-module scoping is what
keeps that diameter small enough to be practical.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .budget import ResourceBudget
from .bmc import Unroller
from .sat import Solver
from .trace import Trace
from .transition import TransitionSystem


class InductionResult:
    """Outcome of a k-induction run."""

    def __init__(self, status: str, k: int, trace: Optional[Trace],
                 stats: Dict[str, int]) -> None:
        self.status = status      # 'proved' | 'failed' | 'unknown'
        self.k = k
        self.trace = trace
        self.stats = stats

    def __repr__(self) -> str:
        return f"InductionResult({self.status} @ k={self.k})"


def k_induction(ts: TransitionSystem, max_k: int = 30,
                budget: Optional[ResourceBudget] = None,
                unique_states: bool = True) -> InductionResult:
    """Run temporal induction with increasing k.

    Returns ``proved`` (property holds for all reachable states),
    ``failed`` (with a validated counterexample trace), or ``unknown``
    when ``max_k`` is exhausted.  Raises
    :class:`~repro.formal.budget.BudgetExceeded` on budget exhaustion.
    """
    base_solver = Solver(budget)
    base = Unroller(ts, base_solver, constrain_init=True)
    step_solver = Solver(budget)
    step = Unroller(ts, step_solver, constrain_init=False)
    uniq = _UniqueStates(ts, step, step_solver) if unique_states else None

    for k in range(0, max_k + 1):
        # ---- base case: counterexample of exactly length k?
        base.assert_constraint(k)
        bad_lit = base.bad_at(k)
        if base_solver.solve([bad_lit]):
            trace = Trace(ts, base.extract_inputs(k))
            return InductionResult("failed", k, trace,
                                   _merge(base_solver, step_solver))
        base_solver.add_clause([bad_lit ^ 1])

        # ---- inductive step: good for frames 0..k, bad at frame k+1?
        step.assert_constraint(k)
        step.assert_constraint(k + 1)
        step_solver.add_clause([step.bad_at(k) ^ 1])
        if uniq is not None:
            uniq.extend(k + 1)
        step_bad = step.bad_at(k + 1)
        if not step_solver.solve([step_bad]):
            return InductionResult("proved", k, None,
                                   _merge(base_solver, step_solver))

    return InductionResult("unknown", max_k, None,
                           _merge(base_solver, step_solver))


def _merge(base: Solver, step: Solver) -> Dict[str, int]:
    return {
        key: base.stats[key] + step.stats[key] for key in base.stats
    }


class _UniqueStates:
    """Pairwise state-distinctness clauses for the step unrolling."""

    def __init__(self, ts: TransitionSystem, unroller: Unroller,
                 solver: Solver) -> None:
        self.ts = ts
        self.unroller = unroller
        self.solver = solver
        self._frames_done = 0

    def extend(self, up_to_frame: int) -> None:
        """Ensure distinctness constraints cover frames 0..up_to_frame."""
        for new in range(self._frames_done, up_to_frame + 1):
            for old in range(new):
                self._add_distinct(old, new)
        self._frames_done = max(self._frames_done, up_to_frame + 1)

    def _add_distinct(self, a: int, b: int) -> None:
        ctx_a = self.unroller.frame(a)
        ctx_b = self.unroller.frame(b)
        diff_lits: List[int] = []
        for latch in self.ts.latches:
            lit_a = ctx_a.lit(latch)
            lit_b = ctx_b.lit(latch)
            x = self.solver.new_var() << 1
            # x <-> (a xor b)
            self.solver.add_clause([x ^ 1, lit_a, lit_b])
            self.solver.add_clause([x ^ 1, lit_a ^ 1, lit_b ^ 1])
            self.solver.add_clause([x, lit_a ^ 1, lit_b])
            self.solver.add_clause([x, lit_a, lit_b ^ 1])
            diff_lits.append(x)
        if diff_lits:
            self.solver.add_clause(diff_lits)
