"""k-induction: SAT-based unbounded safety proof.

Standard temporal induction (Sheeran et al.): the property holds if

- **base**: no counterexample of length <= k from the initial state, and
- **step**: no path of k+1 constraint-satisfying transitions where the
  property holds for the first k frames and fails at frame k+1, starting
  from *any* state.

``unique_states=True`` adds simple-path (pairwise state-distinctness)
constraints, making the method complete: k eventually reaches the
design's recurrence diameter.  The paper's leaf-module scoping is what
keeps that diameter small enough to be practical.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from .budget import ResourceBudget
from .bmc import Unroller
from .sat import Solver, stats_delta
from .trace import Trace
from .transition import TransitionSystem


class InductionResult:
    """Outcome of a k-induction run."""

    def __init__(self, status: str, k: int, trace: Optional[Trace],
                 stats: Dict[str, int]) -> None:
        self.status = status      # 'proved' | 'failed' | 'unknown'
        self.k = k
        self.trace = trace
        self.stats = stats

    def __repr__(self) -> str:
        return f"InductionResult({self.status} @ k={self.k})"


def k_induction(ts: TransitionSystem, max_k: int = 30,
                budget: Optional[ResourceBudget] = None,
                unique_states: bool = True) -> InductionResult:
    """Run temporal induction with increasing k.

    Returns ``proved`` (property holds for all reachable states),
    ``failed`` (with a validated counterexample trace), or ``unknown``
    when ``max_k`` is exhausted.  Raises
    :class:`~repro.formal.budget.BudgetExceeded` on budget exhaustion.
    """
    base_solver = Solver(budget)
    base = Unroller(ts, base_solver, constrain_init=True)
    step_solver = Solver(budget)
    step = Unroller(ts, step_solver, constrain_init=False)
    uniq = _UniqueStates(ts, step, step_solver) if unique_states else None

    for k in range(0, max_k + 1):
        # ---- base case: counterexample of exactly length k?
        base.assert_constraint(k)
        bad_lit = base.bad_at(k)
        if base_solver.solve([bad_lit]):
            trace = Trace(ts, base.extract_inputs(k))
            return InductionResult("failed", k, trace,
                                   _merge(base_solver, step_solver))
        base_solver.add_clause([bad_lit ^ 1])

        # ---- inductive step: good for frames 0..k, bad at frame k+1?
        step.assert_constraint(k)
        step.assert_constraint(k + 1)
        step_solver.add_clause([step.bad_at(k) ^ 1])
        if uniq is not None:
            uniq.extend(k + 1)
        step_bad = step.bad_at(k + 1)
        if not step_solver.solve([step_bad]):
            return InductionResult("proved", k, None,
                                   _merge(base_solver, step_solver))

    return InductionResult("unknown", max_k, None,
                           _merge(base_solver, step_solver))


def k_induction_session(base_session, step_session, assert_name: str,
                        max_k: int = 30,
                        unique_states: bool = True) -> InductionResult:
    """Temporal induction over a pair of shared, already-armed SAT
    sessions (see :mod:`repro.formal.satspace`): one init-constrained
    session for the base leg, one free-initial-state session for the
    step leg.

    Both legs run under the assertion's activation literal: queries are
    ``solve([act, bad@k])`` and all per-assertion facts — base blocking
    units, the step leg's "property holds at frame k" units, and the
    simple-path distinctness disjunctions (which range over *this*
    assertion's cone-of-influence latches) — are guarded by ``¬act``.
    XOR difference definitions and frame encodings are pure definitions
    and stay shared.  The query sequence is equivalent to the cold
    :func:`k_induction` modulo retained learned clauses, so statuses and
    depths are identical.

    A ``failed`` result carries ``trace=None``; callers re-derive the
    canonical counterexample cold (the base leg's query sequence through
    a failure at depth k is exactly :func:`~repro.formal.bmc.bmc`'s).
    """
    base_solver = base_session.solver
    step_solver = step_session.solver
    before = (base_solver.stats_snapshot(), step_solver.stats_snapshot())
    base_act = base_session.activation(assert_name)
    step_act = step_session.activation(assert_name)
    bad_node = base_session.cluster.bads[assert_name]
    uniq = step_session.unique_states(assert_name) if unique_states else None

    for k in range(0, max_k + 1):
        # ---- base case: counterexample of exactly length k?
        base_session.assert_constraint(k)
        bad_lit = base_session.frame(k).lit(bad_node)
        if base_solver.solve([base_act, bad_lit]):
            return InductionResult(
                "failed", k, None,
                _session_stats(base_solver, step_solver, before))
        base_solver.add_clause([base_act ^ 1, bad_lit ^ 1])

        # ---- inductive step: good for frames 0..k, bad at frame k+1?
        step_session.assert_constraint(k)
        step_session.assert_constraint(k + 1)
        step_bad_k = step_session.frame(k).lit(bad_node)
        step_solver.add_clause([step_act ^ 1, step_bad_k ^ 1])
        if uniq is not None:
            uniq.extend(k + 1)
        step_bad = step_session.frame(k + 1).lit(bad_node)
        if not step_solver.solve([step_act, step_bad]):
            return InductionResult(
                "proved", k, None,
                _session_stats(base_solver, step_solver, before))

    return InductionResult("unknown", max_k, None,
                           _session_stats(base_solver, step_solver, before))


def _merge(base: Solver, step: Solver) -> Dict[str, int]:
    base_snap = base.stats_snapshot()
    step_snap = step.stats_snapshot()
    merged = {key: base_snap[key] + step_snap[key] for key in base_snap}
    merged["base"] = base_snap
    merged["step"] = step_snap
    return merged


def _session_stats(base: Solver, step: Solver,
                   before: Tuple[Dict[str, int], Dict[str, int]]) -> Dict[str, int]:
    base_delta = stats_delta(before[0], base.stats_snapshot())
    step_delta = stats_delta(before[1], step.stats_snapshot())
    merged = {key: base_delta[key] + step_delta[key] for key in base_delta}
    merged["base"] = base_delta
    merged["step"] = step_delta
    return merged


class _UniqueStates:
    """Pairwise state-distinctness clauses for the step unrolling.

    ``guard`` (an activation literal) scopes the distinctness
    *disjunctions* to one assertion of a shared session; the XOR
    difference definitions stay unguarded (they are pure definitions)
    and are memoized in ``xor_memo`` keyed by (frame, frame, latch) so
    successive assertions of a cluster share them.  ``latches``
    overrides the distinctness support — shared sessions pass the
    assertion's own cone-of-influence latch list, since distinctness
    over the union cone would weaken simple-path and change proved
    depths.
    """

    def __init__(self, ts: TransitionSystem, unroller: Unroller,
                 solver: Solver, guard: Optional[int] = None,
                 latches: Optional[List[int]] = None,
                 xor_memo: Optional[Dict] = None) -> None:
        self.ts = ts
        self.unroller = unroller
        self.solver = solver
        self.guard = guard
        self.latches = list(ts.latches if latches is None else latches)
        self._xor_memo = {} if xor_memo is None else xor_memo
        self._frames_done = 0

    def extend(self, up_to_frame: int) -> None:
        """Ensure distinctness constraints cover frames 0..up_to_frame."""
        for new in range(self._frames_done, up_to_frame + 1):
            for old in range(new):
                self._add_distinct(old, new)
        self._frames_done = max(self._frames_done, up_to_frame + 1)

    def _add_distinct(self, a: int, b: int) -> None:
        ctx_a = self.unroller.frame(a)
        ctx_b = self.unroller.frame(b)
        diff_lits: List[int] = []
        for latch in self.latches:
            key = (a, b, latch)
            x = self._xor_memo.get(key)
            if x is None:
                lit_a = ctx_a.lit(latch)
                lit_b = ctx_b.lit(latch)
                x = self.solver.new_var() << 1
                # x <-> (a xor b)
                self.solver.add_clause([x ^ 1, lit_a, lit_b])
                self.solver.add_clause([x ^ 1, lit_a ^ 1, lit_b ^ 1])
                self.solver.add_clause([x, lit_a ^ 1, lit_b])
                self.solver.add_clause([x, lit_a, lit_b ^ 1])
                self._xor_memo[key] = x
            diff_lits.append(x)
        if not diff_lits:
            return
        if self.guard is None:
            self.solver.add_clause(diff_lits)
        else:
            self.solver.add_clause([self.guard ^ 1] + diff_lits)
