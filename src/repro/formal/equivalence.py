"""Sequential equivalence checking.

The Verifiable-RTL requirement behind Figure 6 is that the injection
hardware is *transparent* when disabled: with EC/ED tied to zero, the
verifiable module must behave exactly like the original release.  This
module proves that claim formally instead of by simulation: it builds
the product machine of two designs driven by shared inputs and checks
that no reachable state makes any output pair differ.

The same checker doubles as a regression tool for ECOs (the paper's
post-route fixes): re-prove the patched module equivalent to the RTL.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional

from ..rtl.elaborate import FlatDesign, elaborate
from ..rtl.module import Module, RtlError
from ..rtl.netlist import bitblast
from ..rtl.signals import Const, Expr, Input, Reg, substitute
from .budget import ResourceBudget
from .engine import CheckResult, ModelChecker
from .transition import TransitionSystem

MISCOMPARE_OUTPUT = "__miscompare__"


def build_miter(left: Module, right: Module,
                tie_offs: Optional[Mapping[str, int]] = None,
                outputs: Optional[List[str]] = None,
                compare_state: bool = False) -> FlatDesign:
    """Product machine of two modules over shared inputs.

    ``tie_offs`` pins named inputs (of either side) to constants —
    e.g. the injection ports of the verifiable side.  ``outputs``
    restricts the comparison (default: the outputs the modules share).
    The result has a single 1-bit output ``__miscompare__``.

    ``compare_state=True`` additionally miscompares same-named register
    pairs.  That *strengthens* the equivalence claim into a structural
    correspondence — stronger than observable equivalence, but
    1-inductive whenever the correspondence actually holds, which is
    exactly the situation for the error-injection transparency proof
    (the transform keeps every register).
    """
    compared = outputs
    if compared is None:
        compared = sorted(set(left.outputs) & set(right.outputs))
    if not compared:
        raise RtlError("no common outputs to compare")

    miter = FlatDesign(f"miter_{left.name}_{right.name}")
    tie_offs = dict(tie_offs or {})

    def flatten_side(module: Module, prefix: str) -> Dict[str, Expr]:
        design = elaborate(module)
        mapping: Dict[Expr, Expr] = {}
        for name, port in design.inputs.items():
            if name in tie_offs:
                mapping[port] = Const(tie_offs[name], port.width)
            elif name in miter.inputs:
                if miter.inputs[name].width != port.width:
                    raise RtlError(
                        f"shared input {name!r} differs in width between "
                        f"the two sides"
                    )
                mapping[port] = miter.inputs[name]
            else:
                shared = Input(name, port.width)
                miter.inputs[name] = shared
                mapping[port] = shared
        for reg in design.regs:
            fresh = Reg(prefix + reg.name, reg.width, reg.reset)
            miter.add_reg(fresh)
            mapping[reg] = fresh
        memo: Dict[int, Expr] = {}
        for reg, fresh in zip(design.regs,
                              miter.regs[-len(design.regs):]
                              if design.regs else []):
            fresh.next = substitute(reg.next, mapping, memo)
        return {
            name: substitute(expr, mapping, memo)
            for name, expr in design.outputs.items()
        }

    left_outputs = flatten_side(left, "l.")
    right_outputs = flatten_side(right, "r.")

    # Interleave corresponding registers of the two sides so the BDD
    # variable order keeps each l.X / r.X pair adjacent — the reached
    # set of a product machine is dominated by the l == r correlation,
    # which is linear-sized under this order and exponential otherwise.
    miter.regs.sort(key=lambda reg: (reg.name[2:], reg.name[:2]))

    differs: Expr = Const(0, 1)
    for name in compared:
        l_expr = left_outputs[name]
        r_expr = right_outputs[name]
        if l_expr.width != r_expr.width:
            raise RtlError(f"output {name!r} differs in width")
        differs = differs | l_expr.ne(r_expr)
    if compare_state:
        by_suffix: Dict[str, List[Reg]] = {}
        for reg in miter.regs:
            by_suffix.setdefault(reg.name[2:], []).append(reg)
        for suffix, pair in sorted(by_suffix.items()):
            if len(pair) == 2 and pair[0].width == pair[1].width:
                differs = differs | pair[0].ne(pair[1])
    miter.outputs[MISCOMPARE_OUTPUT] = differs
    return miter


def check_equivalence(left: Module, right: Module,
                      tie_offs: Optional[Mapping[str, int]] = None,
                      outputs: Optional[List[str]] = None,
                      budget: Optional[ResourceBudget] = None,
                      method: str = "bdd-combined") -> CheckResult:
    """Prove two modules sequentially equivalent (PASS) or produce an
    input trace that makes their outputs diverge (FAIL).

    The default engine is the combined BDD traversal: output equality
    is rarely inductive (it needs the register correspondence as a
    strengthening), while the product machine's reached set is compact
    under the interleaved register order the miter sets up.  A short
    bounded search runs first, so shallow divergences (the common case
    for real bugs) return a trace without paying for the proof attempt.
    """
    miter = build_miter(left, right, tie_offs=tie_offs, outputs=outputs)
    blaster = bitblast(miter)
    ts = TransitionSystem.from_blaster(
        blaster, MISCOMPARE_OUTPUT,
        name=f"equiv({left.name},{right.name})",
    )
    checker = ModelChecker(ts, budget=budget)
    quick = checker.check(method="bmc", max_bound=20)
    if quick.failed:
        return quick
    return checker.check(method=method)


def injection_transparent(base: Module, verifiable: Module,
                          budget: Optional[ResourceBudget] = None
                          ) -> CheckResult:
    """Prove the Figure 6 transparency claim: with EC/ED tied to zero,
    the Verifiable RTL is sequentially equivalent to the base module."""
    spec = verifiable.integrity
    if spec is None or spec.ec_port is None:
        raise RtlError(f"{verifiable.name!r} is not Verifiable RTL")
    tie_offs = {spec.ec_port: 0, spec.ed_port: 0}
    # the transform preserves every register, so the strengthened
    # (state-corresponding) claim holds and is 1-inductive — proved by
    # k-induction in milliseconds regardless of module size
    miter = build_miter(base, verifiable, tie_offs=tie_offs,
                        compare_state=True)
    blaster = bitblast(miter)
    ts = TransitionSystem.from_blaster(
        blaster, MISCOMPARE_OUTPUT,
        name=f"transparent({base.name})",
    )
    return ModelChecker(ts, budget=budget).check(method="kind")
