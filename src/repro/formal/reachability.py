"""BDD-based unbounded model checking: forward, backward and combined
reachability over a partitioned transition relation.

This reproduces the role of the paper's in-house engine: "a powerful
solver for properties with UMC ... as well as combined forward and
backward traversal for OBDD-based invariant checking".

Variable order: latch ``i`` gets current-state variable ``2 i`` and
next-state variable ``2 i + 1`` (interleaved, so renaming between the
two is order-preserving); primary inputs follow after all state
variables.  The transition relation is kept *partitioned* — one
conjunct ``next_i <-> f_i(s, x)`` per latch — and images are computed
with early quantification over a static schedule.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple

from ..rtl.netlist import Aig
from ..rtl.netlist import FALSE as AIG_FALSE
from ..rtl.netlist import TRUE as AIG_TRUE
from .bdd import FALSE, TRUE, Bdd
from .budget import ResourceBudget
from .transition import TransitionSystem


class SymbolicModel:
    """BDD encoding of a transition system.

    ``bdd`` lets a caller supply a (possibly already warmed) manager —
    the shared-workspace path, see :mod:`repro.formal.workspace` —
    instead of building a fresh one; the manager is unconditionally
    re-armed with ``budget`` (``None`` disarms it), matching
    ``Bdd(budget)`` semantics so a stale budget from the manager's
    previous problem can never leak into this one.  All
    *per-problem* state (AIG-literal cache, variable maps, partitions,
    quantification schedules) stays on the model, so two models may
    safely share one manager as long as their lifetimes do not
    interleave mid-operation — which is how the campaign runs them:
    one check at a time per worker.
    """

    def __init__(self, ts: TransitionSystem,
                 budget: Optional[ResourceBudget] = None,
                 cluster_limit: int = 1,
                 bdd: Optional[Bdd] = None) -> None:
        self.ts = ts
        if bdd is None:
            self.bdd = Bdd(budget)
        else:
            self.bdd = bdd
            bdd.rearm(budget)
        num_latches = len(ts.latches)
        self.curr_vars: Dict[int, int] = {}   # latch lit -> bdd var
        self.next_vars: Dict[int, int] = {}
        for index, latch in enumerate(ts.latches):
            self.curr_vars[latch] = 2 * index
            self.next_vars[latch] = 2 * index + 1
        self.input_vars: Dict[int, int] = {
            lit: 2 * num_latches + j for j, lit in enumerate(ts.inputs)
        }
        self._node_cache: Dict[int, int] = {}
        self.constraint = self._build(ts.constraint)
        self.bad = self._build(ts.bad)
        self.partitions: List[Tuple[int, int]] = []  # (next var, T_i bdd)
        for latch in ts.latches:
            f_next = self._build(ts.next_fn[latch])
            relation = self.bdd.xnor_(
                self.bdd.var_node(self.next_vars[latch]), f_next
            )
            self.partitions.append((self.next_vars[latch], relation))
        if cluster_limit > 1:
            self._cluster(cluster_limit)
        self.init = self.bdd.cube({
            self.curr_vars[latch]: ts.init[latch] for latch in ts.latches
        })
        self._curr_set = frozenset(self.curr_vars.values())
        self._input_set = frozenset(self.input_vars.values())
        self._next_set = frozenset(self.next_vars.values())
        self._fwd_schedule = self._quantify_schedule(forward=True)
        self._bwd_schedule = self._quantify_schedule(forward=False)
        self._curr_to_next = {
            self.curr_vars[l]: self.next_vars[l] for l in ts.latches
        }
        self._next_to_curr = {
            self.next_vars[l]: self.curr_vars[l] for l in ts.latches
        }

    # ------------------------------------------------------------------
    def _build(self, aig_lit: int) -> int:
        """BDD over current-state and input variables of an AIG literal."""
        aig = self.ts.aig
        bdd = self.bdd
        cache = self._node_cache
        if aig_lit == AIG_FALSE:
            return FALSE
        if aig_lit == AIG_TRUE:
            return TRUE
        for index in aig.cone_nodes([aig_lit]):
            if index in cache or index == 0:
                continue
            lit = index << 1
            kind = aig.kind(lit)
            if kind == "input":
                cache[index] = bdd.var_node(self.input_vars[lit])
            elif kind == "latch":
                cache[index] = bdd.var_node(self.curr_vars[lit])
            else:
                a, b = aig.fanin(lit)
                node_a = self._cached(a)
                node_b = self._cached(b)
                cache[index] = bdd.and_(node_a, node_b)
        return self._cached(aig_lit)

    def _cached(self, aig_lit: int) -> int:
        if aig_lit == AIG_FALSE:
            return FALSE
        if aig_lit == AIG_TRUE:
            return TRUE
        node = self._node_cache[aig_lit >> 1]
        return self.bdd.not_(node) if aig_lit & 1 else node

    def _cluster(self, limit: int) -> None:
        """Greedily merge adjacent partitions into clusters of up to
        ``limit`` relations (ablation knob: limit=1 keeps the relation
        fully partitioned; a huge limit makes it monolithic)."""
        clustered: List[Tuple[FrozenSet[int], int]] = []
        group_vars: set = set()
        group_rel = TRUE
        count = 0
        merged: List[Tuple[int, int]] = []
        for next_var, relation in self.partitions:
            group_vars.add(next_var)
            group_rel = self.bdd.and_(group_rel, relation)
            count += 1
            if count >= limit:
                merged.append((min(group_vars), group_rel))
                group_vars = set()
                group_rel = TRUE
                count = 0
        if count:
            merged.append((min(group_vars), group_rel))
        self.partitions = merged

    # ------------------------------------------------------------------
    def _quantify_schedule(self, forward: bool) -> List[FrozenSet[int]]:
        """Early-quantification schedule: after conjoining partition i,
        quantify the variables that appear in no later partition.

        Forward images quantify current-state and input variables;
        backward images quantify next-state and input variables.
        """
        bdd = self.bdd
        to_quantify = (
            self._curr_set | self._input_set if forward
            else self._next_set | self._input_set
        )
        remaining_support: List[FrozenSet[int]] = []
        suffix: FrozenSet[int] = frozenset()
        for _, relation in reversed(self.partitions):
            remaining_support.append(suffix)
            suffix = suffix | bdd.support(relation)
        remaining_support.reverse()
        schedule: List[FrozenSet[int]] = []
        for index in range(len(self.partitions)):
            later = remaining_support[index]
            ready = frozenset(
                v for v in to_quantify
                if v not in later
            )
            schedule.append(ready)
            to_quantify = to_quantify - ready
        return schedule

    # ------------------------------------------------------------------
    def image(self, states: int) -> int:
        """Forward image: states reachable in one constrained step."""
        bdd = self.bdd
        current = bdd.and_(states, self.constraint)
        quantified: set = set()
        for index, (_, relation) in enumerate(self.partitions):
            ready = self._fwd_schedule[index]
            current = bdd.and_exists(current, relation, ready)
            quantified.update(ready)
        leftovers = (self._curr_set | self._input_set) - quantified
        if leftovers:
            current = bdd.exists(current, frozenset(leftovers))
        return bdd.rename(current, self._next_to_curr)

    def preimage(self, states: int) -> int:
        """Backward image: states that can reach ``states`` in one
        constrained step."""
        bdd = self.bdd
        target = bdd.and_(
            bdd.rename(states, self._curr_to_next), self.constraint
        )
        quantified: set = set()
        for index, (_, relation) in enumerate(self.partitions):
            ready = self._bwd_schedule[index]
            target = bdd.and_exists(target, relation, ready)
            quantified.update(ready)
        leftovers = (self._next_set | self._input_set) - quantified
        if leftovers:
            target = bdd.exists(target, frozenset(leftovers))
        return target

    def bad_states(self) -> int:
        """States from which some constrained input makes ``bad`` fire."""
        return self.bdd.and_exists(self.constraint, self.bad,
                                   self._input_set)

    def exists_inputs(self, f: int) -> int:
        return self.bdd.exists(f, self._input_set)

    def violates(self, states: int) -> int:
        """Subset of ``states`` from which bad fires immediately."""
        return self.bdd.and_(states, self.bad_states())


@dataclass
class ReachResult:
    """Outcome of a reachability analysis."""

    proved: bool
    cex_depth: Optional[int]
    iterations: int
    peak_live_nodes: int
    engine: str
    reached_states: Optional[int] = None  # BDD node (diagnostics)

    @property
    def failed(self) -> bool:
        return self.cex_depth is not None


def forward_reach(model: SymbolicModel,
                  max_iterations: Optional[int] = None) -> ReachResult:
    """Classic forward least-fixpoint traversal."""
    bdd = model.bdd
    bad = model.bad_states()
    reached = model.init
    frontier = model.init
    depth = 0
    peak = bdd.num_nodes()
    while True:
        if bdd.and_(frontier, bad) != FALSE:
            return ReachResult(False, depth, depth, peak, "bdd-forward",
                               reached)
        if max_iterations is not None and depth >= max_iterations:
            return ReachResult(False, None, depth, peak, "bdd-forward",
                               reached)
        image = model.image(frontier)
        frontier = bdd.and_(image, bdd.not_(reached))
        peak = max(peak, bdd.num_nodes())
        if frontier == FALSE:
            return ReachResult(True, None, depth, peak, "bdd-forward",
                               reached)
        reached = bdd.or_(reached, frontier)
        depth += 1


def backward_reach(model: SymbolicModel,
                   max_iterations: Optional[int] = None) -> ReachResult:
    """Backward traversal from the bad states toward the initial state."""
    bdd = model.bdd
    reached = model.bad_states()
    frontier = reached
    depth = 0
    peak = bdd.num_nodes()
    while True:
        if bdd.and_(model.init, reached) != FALSE:
            return ReachResult(False, depth, depth, peak, "bdd-backward",
                               reached)
        if max_iterations is not None and depth >= max_iterations:
            return ReachResult(False, None, depth, peak, "bdd-backward",
                               reached)
        pre = model.preimage(frontier)
        frontier = bdd.and_(pre, bdd.not_(reached))
        peak = max(peak, bdd.num_nodes())
        if frontier == FALSE:
            return ReachResult(True, None, depth, peak, "bdd-backward",
                               reached)
        reached = bdd.or_(reached, frontier)
        depth += 1


def combined_reach(model: SymbolicModel,
                   max_iterations: Optional[int] = None) -> ReachResult:
    """Combined forward and backward traversal (the in-house engine's
    invariant-checking mode): both frontiers advance in lockstep and the
    search stops as soon as they meet, which typically halves the
    traversal depth on deep counterexamples."""
    bdd = model.bdd
    bad = model.bad_states()
    fwd_reached = model.init
    fwd_frontier = model.init
    bwd_reached = bad
    bwd_frontier = bad
    fwd_done = bwd_done = False
    depth = 0
    peak = bdd.num_nodes()
    while True:
        if bdd.and_(fwd_reached, bwd_reached) != FALSE:
            # met: a real counterexample exists whose length is at most
            # the sum of the two traversal depths
            return ReachResult(False, 2 * depth, depth, peak,
                               "bdd-combined")
        if fwd_done or bwd_done:
            return ReachResult(True, None, depth, peak, "bdd-combined")
        if max_iterations is not None and depth >= max_iterations:
            return ReachResult(False, None, depth, peak, "bdd-combined")
        depth += 1
        image = model.image(fwd_frontier)
        fwd_frontier = bdd.and_(image, bdd.not_(fwd_reached))
        fwd_reached = bdd.or_(fwd_reached, fwd_frontier)
        fwd_done = fwd_frontier == FALSE
        pre = model.preimage(bwd_frontier)
        bwd_frontier = bdd.and_(pre, bdd.not_(bwd_reached))
        bwd_reached = bdd.or_(bwd_reached, bwd_frontier)
        bwd_done = bwd_frontier == FALSE
        peak = max(peak, bdd.num_nodes())
