"""Shared BDD workspaces — one hash-consed universe per module.

Every BDD-family engine run used to build its universe from scratch: a
fresh :class:`~repro.formal.bdd.Bdd` manager, an empty unique table,
cold ``ite``/``exists``/``and_exists`` memos.  A campaign, however,
checks each module many times (one job per asserted property, plus
portfolio retries), and jobs of the same module encode their transition
relations over the *same* variable numbering — so consecutive checks
rebuild near-identical node sets and recompute the same intermediate
operations.

A :class:`BddWorkspace` keeps one manager per *module key* alive across
checks.  Sharing is sound because a BDD manager is a pure structure:

- the unique table maps ``(var, lo, hi)`` triples to canonical node
  ids, so a node means the same boolean function whatever problem
  created it — a later problem that builds the same function gets a
  hash-cons hit instead of a new node;
- the operation memos (``ite``, ``exists``, ``and_exists``, ``rename``)
  cache pure functions of node ids, so entries left behind by one
  problem are exactly correct for the next;
- per-problem state (the AIG-literal cache, variable maps,
  quantification schedules) lives in
  :class:`~repro.formal.reachability.SymbolicModel`, which is still
  built fresh per check — only the manager underneath is reused.

Budgets do *not* travel with the manager: :meth:`BddWorkspace.lease`
re-arms the manager with the next check's fresh
:class:`~repro.formal.budget.ResourceBudget`.  Only newly *created*
nodes are charged, so a warmed manager consumes at most as much budget
as a cold one for the same problem — which also means a *binding* node
budget is the one place sharing can change an outcome: a check that
would TIMEOUT cold may complete warm (never the reverse; PASS/FAIL
verdicts themselves are sharing-invariant, since hash-consed BDDs are
canonical whatever else the table holds).  A check that exhausts its budget
mid-operation leaves the manager consistent — every node and memo entry
written so far is valid — so the next lease starts from a healthy,
merely larger, table (``tests/test_workspace.py`` locks this in).

Two memory valves bound a long-lived workspace:

- ``max_managers`` — at most this many per-module managers are retained
  (least-recently-leased evicted first);
- ``retain_memos=False`` — clear the operation memos on every lease,
  keeping only the node table (structural sharing) between checks;
- ``max_manager_nodes`` — a manager whose table outgrew this many nodes
  is discarded on its next lease and rebuilt cold.

Workspaces are deliberately **not** picklable process-shared objects:
each executor worker owns its own (see
:mod:`repro.orchestrate.executor`), which keeps sharing lock-free.
"""

from __future__ import annotations

from typing import Dict, Optional

from .bdd import Bdd
from .budget import ResourceBudget


class WorkspaceBinding:
    """A :class:`BddWorkspace` scoped to one module key.

    This is the object a check-job runner threads into
    :class:`~repro.formal.engine.EngineOptions`: the engine only ever
    leases "the manager for *this* problem" and never sees the keying
    scheme.  Bindings are cheap throwaway views; the workspace owns the
    managers.
    """

    __slots__ = ("workspace", "key")

    def __init__(self, workspace: "BddWorkspace", key: str) -> None:
        self.workspace = workspace
        self.key = key

    def lease(self, budget: Optional[ResourceBudget] = None) -> Bdd:
        """Lease the bound module's manager, armed with ``budget``."""
        return self.workspace.lease(self.key, budget)

    def __repr__(self) -> str:
        return f"WorkspaceBinding({self.key!r})"


class BddWorkspace:
    """A pool of per-module :class:`~repro.formal.bdd.Bdd` managers
    shared across checks (portfolio stages and jobs alike).

    ``lease(key, budget)`` is the whole lifecycle: it returns the
    retained manager for ``key`` (or creates one), re-armed with the
    caller's budget.  There is no release call — leases are serial
    within one worker by construction, and the workspace never touches
    a manager while a check is running on it.

    Parameters
    ----------
    max_managers:
        Retain at most this many module managers; the least recently
        leased is evicted when the pool is full.  ``None`` = unbounded.
    retain_memos:
        When ``False``, every lease starts by clearing the manager's
        operation memos (node table kept) — less cross-job speedup,
        flat memo memory.
    max_manager_nodes:
        A retained manager whose node table exceeds this size is
        discarded (and rebuilt cold) at its next lease, bounding
        per-module table growth.  ``None`` = unbounded.
    """

    def __init__(self, max_managers: Optional[int] = 8,
                 retain_memos: bool = True,
                 max_manager_nodes: Optional[int] = None) -> None:
        if max_managers is not None and max_managers < 1:
            raise ValueError(
                f"max_managers must be >= 1 or None, got {max_managers}"
            )
        if max_manager_nodes is not None and max_manager_nodes < 2:
            raise ValueError(
                f"max_manager_nodes must be >= 2 or None, "
                f"got {max_manager_nodes}"
            )
        self.max_managers = max_managers
        self.retain_memos = retain_memos
        self.max_manager_nodes = max_manager_nodes
        #: module key -> manager, in least-recently-leased-first order
        self._managers: Dict[str, Bdd] = {}
        self._leases = 0
        self._reuses = 0
        self._evictions = 0
        self._oversize_discards = 0

    # ------------------------------------------------------------------
    def bind(self, key: str) -> WorkspaceBinding:
        """A view of this workspace scoped to module ``key``."""
        return WorkspaceBinding(self, key)

    def lease(self, key: str,
              budget: Optional[ResourceBudget] = None) -> Bdd:
        """Return the manager for ``key``, re-armed with ``budget``.

        Reuses the retained manager when one exists (applying the memo
        retention and oversize policies), otherwise creates a fresh one
        and, if the pool is full, evicts the least recently leased
        manager to make room.
        """
        self._leases += 1
        manager = self._managers.pop(key, None)
        if manager is not None and self.max_manager_nodes is not None \
                and manager.num_nodes() > self.max_manager_nodes:
            self._oversize_discards += 1
            manager = None
        if manager is not None:
            self._reuses += 1
            if not self.retain_memos:
                manager.clear_memos()
        else:
            manager = Bdd()
            while self.max_managers is not None \
                    and len(self._managers) >= self.max_managers:
                self._managers.pop(next(iter(self._managers)))
                self._evictions += 1
        self._managers[key] = manager  # (re)insert at most-recent end
        manager.rearm(budget)
        return manager

    # ------------------------------------------------------------------
    def manager(self, key: str) -> Optional[Bdd]:
        """Peek at the retained manager for ``key`` (no recency touch,
        no policies applied); ``None`` when not retained."""
        return self._managers.get(key)

    def clear_memos(self, key: Optional[str] = None) -> None:
        """Clear operation memos on one retained manager (or all of
        them), keeping every node table intact."""
        if key is not None:
            manager = self._managers.get(key)
            if manager is not None:
                manager.clear_memos()
            return
        for manager in self._managers.values():
            manager.clear_memos()

    def discard(self, key: Optional[str] = None) -> None:
        """Drop one retained manager (or the whole pool); the next
        lease for a dropped key builds cold."""
        if key is not None:
            self._managers.pop(key, None)
            return
        self._managers.clear()

    # ------------------------------------------------------------------
    def total_nodes(self) -> int:
        """Nodes currently held across every retained manager."""
        return sum(m.num_nodes() for m in self._managers.values())

    def stats(self) -> Dict[str, int]:
        """Lifetime counters: leases, reuse hits, evictions, discards,
        plus the current pool shape."""
        return {
            "managers": len(self._managers),
            "total_nodes": self.total_nodes(),
            "leases": self._leases,
            "reuses": self._reuses,
            "evictions": self._evictions,
            "oversize_discards": self._oversize_discards,
        }

    def __repr__(self) -> str:
        return (f"BddWorkspace(managers={len(self._managers)}, "
                f"leases={self._leases}, reuses={self._reuses})")
