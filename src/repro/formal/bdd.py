"""Reduced Ordered Binary Decision Diagrams (ROBDDs).

A from-scratch BDD package in the style of the in-house engine the paper
credits (Jain & Stangier's POBDD work builds on exactly this machinery):
hash-consed nodes, memoised ``ite``/``apply``, existential
quantification, the combined AndExists relational product, and an
order-preserving variable rename for current/next-state swapping.

Node ids: ``0`` is the FALSE terminal, ``1`` the TRUE terminal.  The
manager charges every created node against an optional
:class:`~repro.formal.budget.ResourceBudget`, giving deterministic
"time-outs" for the divide-and-conquer experiment.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from .budget import ResourceBudget

FALSE = 0
TRUE = 1

_TERMINAL_VAR = 1 << 30  # sorts after every real variable

#: process-wide count of BDD nodes ever created, across all managers.
#: Benchmarks read this to compare cold runs (a fresh manager per
#: check, unreachable from outside the engine) against shared-workspace
#: runs; it is telemetry only and never influences behaviour.
_NODES_CREATED = 0


def nodes_created_total() -> int:
    """Total BDD nodes created in this process, across all managers."""
    return _NODES_CREATED


class Bdd:
    """A BDD manager with a fixed (construction-order) variable order."""

    def __init__(self, budget: Optional[ResourceBudget] = None) -> None:
        self.budget = budget
        self._var: List[int] = [_TERMINAL_VAR, _TERMINAL_VAR]
        self._lo: List[int] = [0, 1]
        self._hi: List[int] = [0, 1]
        self._unique: Dict[Tuple[int, int, int], int] = {}
        self._ite_memo: Dict[Tuple[int, int, int], int] = {}
        self._exists_memo: Dict[Tuple[int, FrozenSet[int]], int] = {}
        self._andex_memo: Dict[Tuple[int, int, FrozenSet[int]], int] = {}
        self._rename_memo: Dict[Tuple[int, int], int] = {}
        self._rename_maps: Dict[int, Dict[int, int]] = {}

    # ------------------------------------------------------------------
    # node management
    # ------------------------------------------------------------------
    def mk(self, var: int, lo: int, hi: int) -> int:
        """Hash-consed node constructor (the only node creator)."""
        if lo == hi:
            return lo
        key = (var, lo, hi)
        found = self._unique.get(key)
        if found is not None:
            return found
        global _NODES_CREATED
        _NODES_CREATED += 1
        node = len(self._var)
        self._var.append(var)
        self._lo.append(lo)
        self._hi.append(hi)
        self._unique[key] = node
        if self.budget is not None:
            self.budget.charge_nodes()
        return node

    def var_node(self, var: int) -> int:
        """The BDD of a single variable."""
        return self.mk(var, FALSE, TRUE)

    def var_of(self, node: int) -> int:
        return self._var[node]

    def cofactors(self, node: int, var: int) -> Tuple[int, int]:
        """(low, high) cofactors of ``node`` with respect to ``var``."""
        if self._var[node] == var:
            return self._lo[node], self._hi[node]
        return node, node

    def num_nodes(self) -> int:
        """Size of the node table (terminals included).  Nodes are
        never freed, so this is also the count of nodes ever created
        by this manager, plus the two terminals."""
        return len(self._var)

    # ------------------------------------------------------------------
    # manager reuse (shared workspaces)
    # ------------------------------------------------------------------
    def rearm(self, budget: Optional[ResourceBudget]) -> None:
        """Swap in the budget of the *next* problem this manager serves.

        A reused manager keeps its hash-consed node table and operation
        memos (that is the point of sharing), but each check must be
        charged against its own fresh :class:`ResourceBudget` — nodes
        created for earlier problems were charged to earlier budgets
        and are free to reuse.  Passing ``None`` disarms the manager.
        """
        self.budget = budget

    def clear_memos(self) -> None:
        """Drop every operation memo, keeping the node table.

        The unique table is the ground truth — every node id stays
        valid, and recomputing a cleared operation rebuilds no nodes
        (every ``mk`` hash-cons hits).  Clearing memos between problems
        is the workspace's memory-pressure valve: it bounds the caches
        that grow with *operations performed* while retaining the
        structural sharing that grows with *functions built*.  The
        rename-mapping pins are dropped together with the rename memo;
        the two must live and die as one, because the memo is keyed by
        ``id(mapping)`` and the pin is what keeps those ids unique.
        """
        self._ite_memo.clear()
        self._exists_memo.clear()
        self._andex_memo.clear()
        self._rename_memo.clear()
        self._rename_maps.clear()

    # ------------------------------------------------------------------
    # boolean operations
    # ------------------------------------------------------------------
    def ite(self, f: int, g: int, h: int) -> int:
        """If-then-else: the universal connective every boolean
        operation below reduces to (memoised)."""
        if f == TRUE:
            return g
        if f == FALSE:
            return h
        if g == h:
            return g
        if g == TRUE and h == FALSE:
            return f
        key = (f, g, h)
        found = self._ite_memo.get(key)
        if found is not None:
            return found
        var = min(self._var[f], self._var[g], self._var[h])
        f_lo, f_hi = self.cofactors(f, var)
        g_lo, g_hi = self.cofactors(g, var)
        h_lo, h_hi = self.cofactors(h, var)
        result = self.mk(
            var,
            self.ite(f_lo, g_lo, h_lo),
            self.ite(f_hi, g_hi, h_hi),
        )
        self._ite_memo[key] = result
        return result

    def not_(self, f: int) -> int:
        return self.ite(f, FALSE, TRUE)

    def and_(self, f: int, g: int) -> int:
        return self.ite(f, g, FALSE)

    def or_(self, f: int, g: int) -> int:
        return self.ite(f, TRUE, g)

    def xor_(self, f: int, g: int) -> int:
        return self.ite(f, self.not_(g), g)

    def xnor_(self, f: int, g: int) -> int:
        return self.ite(f, g, self.not_(g))

    def implies(self, f: int, g: int) -> int:
        return self.ite(f, g, TRUE)

    def and_many(self, nodes: Iterable[int]) -> int:
        acc = TRUE
        for node in nodes:
            acc = self.and_(acc, node)
            if acc == FALSE:
                return FALSE
        return acc

    def or_many(self, nodes: Iterable[int]) -> int:
        acc = FALSE
        for node in nodes:
            acc = self.or_(acc, node)
            if acc == TRUE:
                return TRUE
        return acc

    def cube(self, assignment: Dict[int, int]) -> int:
        """Conjunction of literals: ``{var: bit}``."""
        node = TRUE
        for var in sorted(assignment, reverse=True):
            bit = assignment[var]
            node = self.mk(var, FALSE, node) if bit else self.mk(var, node, FALSE)
        return node

    # ------------------------------------------------------------------
    # quantification
    # ------------------------------------------------------------------
    def exists(self, f: int, variables: FrozenSet[int]) -> int:
        """Existentially quantify ``variables`` out of ``f``."""
        if f in (FALSE, TRUE) or not variables:
            return f
        key = (f, variables)
        found = self._exists_memo.get(key)
        if found is not None:
            return found
        var = self._var[f]
        lo, hi = self._lo[f], self._hi[f]
        if var in variables:
            result = self.or_(
                self.exists(lo, variables), self.exists(hi, variables)
            )
        else:
            result = self.mk(
                var, self.exists(lo, variables), self.exists(hi, variables)
            )
        self._exists_memo[key] = result
        return result

    def and_exists(self, f: int, g: int, variables: FrozenSet[int]) -> int:
        """Relational product: ``exists variables . f & g`` without
        building the full conjunction first."""
        if f == FALSE or g == FALSE:
            return FALSE
        if f == TRUE:
            return self.exists(g, variables)
        if g == TRUE:
            return self.exists(f, variables)
        if f == g:
            return self.exists(f, variables)
        if f > g:
            f, g = g, f
        key = (f, g, variables)
        found = self._andex_memo.get(key)
        if found is not None:
            return found
        var = min(self._var[f], self._var[g])
        f_lo, f_hi = self.cofactors(f, var)
        g_lo, g_hi = self.cofactors(g, var)
        if var in variables:
            lo = self.and_exists(f_lo, g_lo, variables)
            if lo == TRUE:
                result = TRUE
            else:
                result = self.or_(lo, self.and_exists(f_hi, g_hi, variables))
        else:
            result = self.mk(
                var,
                self.and_exists(f_lo, g_lo, variables),
                self.and_exists(f_hi, g_hi, variables),
            )
        self._andex_memo[key] = result
        return result

    # ------------------------------------------------------------------
    # renaming (current <-> next state)
    # ------------------------------------------------------------------
    def rename(self, f: int, mapping: Dict[int, int]) -> int:
        """Rename variables per ``mapping``.

        The mapping must be order-preserving (monotonic on the variable
        order), which holds for the interleaved current/next convention
        used by :mod:`repro.formal.reachability`.
        """
        items = sorted(mapping.items())
        targets = [target for _, target in items]
        if targets != sorted(targets):
            raise ValueError("rename mapping must preserve the variable order")
        map_key = id(mapping)
        self._rename_maps[map_key] = mapping
        return self._rename_rec(f, mapping, map_key)

    def _rename_rec(self, f: int, mapping: Dict[int, int], map_key: int) -> int:
        if f in (FALSE, TRUE):
            return f
        key = (f, map_key)
        found = self._rename_memo.get(key)
        if found is not None:
            return found
        var = self._var[f]
        new_var = mapping.get(var, var)
        result = self.mk(
            new_var,
            self._rename_rec(self._lo[f], mapping, map_key),
            self._rename_rec(self._hi[f], mapping, map_key),
        )
        self._rename_memo[key] = result
        return result

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    def support(self, f: int) -> FrozenSet[int]:
        """Variables a function actually depends on."""
        seen = set()
        variables = set()
        stack = [f]
        while stack:
            node = stack.pop()
            if node in (FALSE, TRUE) or node in seen:
                continue
            seen.add(node)
            variables.add(self._var[node])
            stack.append(self._lo[node])
            stack.append(self._hi[node])
        return frozenset(variables)

    def size(self, f: int) -> int:
        """Number of nodes in the graph rooted at ``f``."""
        seen = set()
        stack = [f]
        while stack:
            node = stack.pop()
            if node in (FALSE, TRUE) or node in seen:
                continue
            seen.add(node)
            stack.append(self._lo[node])
            stack.append(self._hi[node])
        return len(seen) + 2

    def any_sat(self, f: int) -> Dict[int, int]:
        """One satisfying assignment (over the support on the 1-path)."""
        if f == FALSE:
            raise ValueError("FALSE has no satisfying assignment")
        assignment: Dict[int, int] = {}
        node = f
        while node != TRUE:
            if self._hi[node] != FALSE:
                assignment[self._var[node]] = 1
                node = self._hi[node]
            else:
                assignment[self._var[node]] = 0
                node = self._lo[node]
        return assignment

    def sat_count(self, f: int, num_vars: int) -> int:
        """Number of satisfying assignments over ``num_vars`` variables
        (variables are assumed to be 0..num_vars-1)."""
        memo: Dict[int, int] = {}

        def count(node: int) -> Tuple[int, int]:
            # returns (count below this node, var level of node)
            if node == FALSE:
                return 0, num_vars
            if node == TRUE:
                return 1, num_vars
            if node in memo:
                return memo[node], self._var[node]
            var = self._var[node]
            lo_count, lo_level = count(self._lo[node])
            hi_count, hi_level = count(self._hi[node])
            total = (lo_count << (lo_level - var - 1)) + \
                    (hi_count << (hi_level - var - 1))
            memo[node] = total
            return total, var

        total, level = count(f)
        return total << level

    def eval(self, f: int, assignment: Dict[int, int]) -> int:
        """Evaluate under a complete assignment of the support."""
        node = f
        while node not in (FALSE, TRUE):
            var = self._var[node]
            node = self._hi[node] if assignment.get(var, 0) else self._lo[node]
        return node
