"""Symbolic transition systems extracted from bit-blasted designs.

A :class:`TransitionSystem` is the common input of every formal engine:

- ``latches`` with initial values and next-state functions (AIG literals),
- ``inputs`` (free variables each cycle),
- ``constraint`` — the conjunction of all *assumed* properties, evaluated
  over (state, input) every cycle; counterexamples must satisfy it at
  every step, including the violating one,
- ``bad`` — the *asserted* property's violation flag over (state, input).

Cone-of-influence reduction trims latches and inputs that cannot affect
``bad`` or ``constraint``; the paper's leaf modules are small, but COI is
what makes the divide-and-conquer partitioning measurable (Figure 7).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..rtl.netlist import Aig, BitBlaster, FALSE, TRUE


@dataclass
class TransitionSystem:
    """A bit-level safety-checking problem."""

    aig: Aig
    inputs: List[int]                 # input literals (positive)
    latches: List[int]                # latch literals (positive)
    init: Dict[int, int]              # latch lit -> initial bit
    next_fn: Dict[int, int]           # latch lit -> next-state literal
    bad: int                          # violation literal
    constraint: int = TRUE            # assumption literal
    name: str = ""
    blaster: Optional[BitBlaster] = None

    # ------------------------------------------------------------------
    @classmethod
    def from_blaster(cls, blaster: BitBlaster, bad_output: str,
                     constraint_output: Optional[str] = None,
                     name: str = "") -> "TransitionSystem":
        """Build from a bit-blasted design with 1-bit ``bad`` (and
        optionally ``constraint``) outputs."""
        aig = blaster.aig
        bad_bits = blaster.output_bits[bad_output]
        if len(bad_bits) != 1:
            raise ValueError(f"bad output {bad_output!r} must be 1 bit")
        constraint = TRUE
        if constraint_output is not None:
            cons_bits = blaster.output_bits[constraint_output]
            if len(cons_bits) != 1:
                raise ValueError(
                    f"constraint output {constraint_output!r} must be 1 bit"
                )
            constraint = cons_bits[0]
        ts = cls(
            aig=aig,
            inputs=list(aig.inputs),
            latches=list(aig.latches),
            init=dict(aig.latch_init),
            next_fn=dict(aig.latch_next),
            bad=bad_bits[0],
            constraint=constraint,
            name=name or blaster.design.name,
            blaster=blaster,
        )
        return ts.coi_reduce()

    # ------------------------------------------------------------------
    def coi_reduce(self, extra_roots: Tuple[int, ...] = ()) -> "TransitionSystem":
        """Restrict to the cone of influence of ``bad`` and
        ``constraint`` (fixpoint through next-state functions).

        ``extra_roots`` widens the cone to additional AIG literals —
        used by :class:`ClusterSystem` to build the union cone over all
        of a cluster's ``bad`` flags."""
        aig = self.aig
        relevant: set = set()
        frontier = [self.bad, self.constraint, *extra_roots]
        while frontier:
            _, latch_lits = aig.support(frontier)
            new = [lit for lit in latch_lits if lit not in relevant]
            if not new:
                break
            relevant.update(new)
            frontier = [self.next_fn[lit] for lit in new]

        latches = [lit for lit in self.latches if lit in relevant]
        roots = [self.bad, self.constraint, *extra_roots]
        roots.extend(self.next_fn[lit] for lit in latches)
        input_lits, _ = aig.support(roots)
        input_set = set(input_lits)
        inputs = [lit for lit in self.inputs if lit in input_set]
        return TransitionSystem(
            aig=aig,
            inputs=inputs,
            latches=latches,
            init={lit: self.init[lit] for lit in latches},
            next_fn={lit: self.next_fn[lit] for lit in latches},
            bad=self.bad,
            constraint=self.constraint,
            name=self.name,
            blaster=self.blaster,
        )

    # ------------------------------------------------------------------
    def size_stats(self) -> Dict[str, int]:
        """Problem-size metrics (reported alongside check results)."""
        roots = [self.bad, self.constraint]
        roots.extend(self.next_fn[lit] for lit in self.latches)
        cone = self.aig.cone_nodes(roots)
        ands = sum(1 for index in cone if self.aig.kind(index << 1) == "and")
        return {
            "latches": len(self.latches),
            "inputs": len(self.inputs),
            "ands": ands,
        }

    def latch_name(self, lit: int) -> str:
        return self.aig.name_of(lit) or f"latch{lit}"

    def input_name(self, lit: int) -> str:
        return self.aig.name_of(lit) or f"input{lit}"

    # ------------------------------------------------------------------
    def evaluate_step(self, state: Dict[int, int],
                      inputs: Dict[int, int]) -> Tuple[Dict[int, int], int, int]:
        """Concrete one-step evaluation: returns (next state, bad bit,
        constraint bit).  Used to replay and validate counterexample
        traces."""
        values = dict(state)
        values.update(inputs)
        # default any un-driven input to 0
        for lit in self.inputs:
            values.setdefault(lit, 0)
        roots = [self.bad, self.constraint]
        roots.extend(self.next_fn[lit] for lit in self.latches)
        results = self.aig.evaluate(roots, values)
        bad_bit, cons_bit = results[0], results[1]
        next_state = {
            lit: results[2 + index] for index, lit in enumerate(self.latches)
        }
        return next_state, bad_bit, cons_bit

    def initial_state(self) -> Dict[int, int]:
        return dict(self.init)


@dataclass
class ClusterSystem:
    """Several assertions of one (module, vunit) compiled into a single
    shared AIG — the paper's property clustering, in transition-system
    form.

    The *spine* is a transition system whose latch/input lists cover the
    union cone of every member's ``bad`` flag plus the shared
    constraint, with ``bad`` pinned to ``FALSE``: it is what a shared
    :class:`~repro.formal.bmc.Unroller` unrolls, so one frame encoding
    serves every member.  ``bads`` maps each assertion name to its AIG
    literal; engines query a member's violation at frame *k* via
    ``frame(k).lit(bads[name])``.

    ``view(name)`` recovers the member's own cone-of-influence-reduced
    problem over the *same* AIG — semantically the member's solo
    compilation, differing only in AIG literal numbering.  Views are
    what per-assertion structure (e.g. induction's unique-states latch
    list) must be computed from: using the union cone instead would
    weaken simple-path constraints and change proved depths.
    """

    aig: Aig
    spine: TransitionSystem
    bads: Dict[str, int]              # assert name -> violation literal
    constraint: int = TRUE
    name: str = ""
    blaster: Optional[BitBlaster] = None
    _views: Dict[str, TransitionSystem] = field(default_factory=dict,
                                                repr=False)

    # ------------------------------------------------------------------
    @classmethod
    def from_blaster(cls, blaster: BitBlaster,
                     bad_outputs: Dict[str, str],
                     constraint_output: Optional[str] = None,
                     name: str = "") -> "ClusterSystem":
        """Build from a bit-blasted design carrying one 1-bit ``bad``
        output per member assertion (and optionally a shared 1-bit
        ``constraint`` output)."""
        aig = blaster.aig
        bads: Dict[str, int] = {}
        for assert_name, output in bad_outputs.items():
            bits = blaster.output_bits[output]
            if len(bits) != 1:
                raise ValueError(f"bad output {output!r} must be 1 bit")
            bads[assert_name] = bits[0]
        constraint = TRUE
        if constraint_output is not None:
            cons_bits = blaster.output_bits[constraint_output]
            if len(cons_bits) != 1:
                raise ValueError(
                    f"constraint output {constraint_output!r} must be 1 bit"
                )
            constraint = cons_bits[0]
        full = TransitionSystem(
            aig=aig,
            inputs=list(aig.inputs),
            latches=list(aig.latches),
            init=dict(aig.latch_init),
            next_fn=dict(aig.latch_next),
            bad=FALSE,
            constraint=constraint,
            name=name or blaster.design.name,
            blaster=blaster,
        )
        spine = full.coi_reduce(extra_roots=tuple(bads.values()))
        return cls(aig=aig, spine=spine, bads=bads, constraint=constraint,
                   name=spine.name, blaster=blaster)

    # ------------------------------------------------------------------
    def members(self) -> List[str]:
        return list(self.bads)

    def view(self, assert_name: str) -> TransitionSystem:
        """The member's own COI-reduced problem over the shared AIG."""
        view = self._views.get(assert_name)
        if view is None:
            view = TransitionSystem(
                aig=self.aig,
                inputs=self.spine.inputs,
                latches=self.spine.latches,
                init=dict(self.spine.init),
                next_fn=dict(self.spine.next_fn),
                bad=self.bads[assert_name],
                constraint=self.constraint,
                name=f"{self.name}.{assert_name}",
                blaster=self.blaster,
            ).coi_reduce()
            self._views[assert_name] = view
        return view
