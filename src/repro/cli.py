"""``python -m repro`` — the campaign CLI.

One TOML file reproduces one campaign::

    python -m repro campaign run    --config campaign.toml
    python -m repro campaign resume --config campaign.toml
    python -m repro campaign report --config campaign.toml
    python -m repro scenario sweep  --config scenario.toml
    python -m repro fleet worker    --config campaign.toml \\
        --connect HOST:PORT --token TOKEN
    python -m repro serve           --config campaign.toml
    python -m repro submit          --config campaign.toml --watch

- ``run`` executes the configured campaign over the component chip
  (``[campaign] blocks`` selects the block subset) and prints the
  paper's Table 2 plus the orchestration stats.  The exit code gates
  CI: 0 when every property passed, 1 when any FAILed or TIMEOUTed,
  2 on a config error;
- ``resume`` restarts a killed campaign from its checkpoint journal
  (the config must set ``[checkpoint] path``) — the finished report is
  byte-identical to an uninterrupted run;
- ``report`` is read-only: it re-derives the plan, inspects the
  journal and the result cache, and prints how much of the campaign is
  already settled — without running a single engine or writing a byte;
- ``scenario sweep`` runs a defect-seeding mutation campaign over a
  *generated* chip family (the config's ``[scenario]`` section; see
  ``docs/scenarios.md``) and prints the versioned detection-rate
  record.  Exit 0 means zero surviving mutants (and sim->formal
  agreement in triage mode), 1 otherwise;
- ``fleet worker`` is the remote half of the ``fleet[:N]`` executor:
  it re-derives the plan from the (identical) config file, dials the
  coordinator, and serves leases until shutdown.  The ssh launcher
  runs this command on remote hosts; it is not normally typed by hand
  (see ``docs/architecture.md``);
- ``serve`` runs the verification-as-a-service daemon
  (:mod:`repro.service`): an HTTP API over a shared SQLite verdict
  database, configured by the ``[service]`` section (see
  ``docs/service.md``).  ``--import-cache`` migrates existing
  per-campaign ``ResultCache`` JSON files into the database first;
- ``submit`` posts the config to a running daemon and waits for (or
  ``--watch`` streams) the result.  Exit codes mirror ``campaign
  run``: 0 all passed, 1 any FAIL/TIMEOUT or a failed run, 2 on
  config/connection errors.

Every ``--config`` accepts a TOML path or ``preset:NAME``, resolving
to the preset library ``examples/presets/NAME.toml`` (``smoke`` |
``nightly`` | ``full`` — see ``docs/configuration.md``).

Every command takes ``--stats`` to additionally print the warm-state
counter blocks — compile-store hit/miss/evict, SAT-workspace session
reuse, BDD-workspace manager reuse — from ``report.stats`` (``run`` /
``resume``) or aggregated from the journal's per-result solver
telemetry (``report``, still without running an engine).

Every command prints the config digest, the same value stamped into
``CampaignReport.stats["config_digest"]``, so output and configuration
can always be matched up after the fact.

The console entry point ``repro`` (see ``setup.py``) is this module's
:func:`main`.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .orchestrate.config import CampaignConfig, ConfigError


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Formal verification campaigns, reproducible from "
                    "one TOML config file.",
    )
    commands = parser.add_subparsers(dest="command", required=True)
    campaign = commands.add_parser(
        "campaign", help="run, resume, or inspect a formal campaign"
    )
    actions = campaign.add_subparsers(dest="action", required=True)
    for action, help_text in (
        ("run", "run the configured campaign from scratch"),
        ("resume", "resume a killed campaign from its checkpoint "
                   "journal"),
        ("report", "read-only status: plan size, journal and cache "
                   "coverage"),
    ):
        sub = actions.add_parser(action, help=help_text)
        sub.add_argument("--config", required=True, metavar="TOML",
                         help="campaign config file "
                              "(see docs/configuration.md)")
        sub.add_argument("--stats", action="store_true",
                         help="print warm-state counter blocks "
                              "(compile store, SAT/BDD workspaces)")
        if action in ("run", "resume"):
            sub.add_argument("--progress", action="store_true",
                             help="print one line per checked property")
    scenario = commands.add_parser(
        "scenario", help="generated-chip-family mutation sweeps"
    )
    scenario_actions = scenario.add_subparsers(dest="action",
                                               required=True)
    sweep = scenario_actions.add_parser(
        "sweep",
        help="seed defects into a generated family and measure the "
             "stereotype properties' detection rate",
    )
    sweep.add_argument("--config", required=True, metavar="TOML",
                       help="campaign config with an optional "
                            "[scenario] section "
                            "(see docs/scenarios.md)")
    sweep.add_argument("--record", metavar="JSON",
                       help="also write the full sweep record (with "
                            "timing) to this file")
    sweep.add_argument("--progress", action="store_true",
                       help="print one line per checked property")
    sweep.add_argument("--warm-golden", action="store_true",
                       help="pre-run the golden modules against the "
                            "same cache/verdict DB so cone-"
                            "fingerprinted mutant jobs replay instead "
                            "of re-solving (runtime wiring: the sweep "
                            "record digest is unchanged)")
    fleet = commands.add_parser(
        "fleet", help="fleet-executor worker processes"
    )
    fleet_actions = fleet.add_subparsers(dest="action", required=True)
    worker = fleet_actions.add_parser(
        "worker",
        help="serve check jobs to a fleet coordinator: replan from the "
             "config, dial --connect, run leases until shutdown "
             "(started by the ssh launcher; see "
             "docs/architecture.md#transports)",
    )
    worker.add_argument("--config", required=True, metavar="TOML",
                        help="campaign config file — must match the "
                             "coordinator's (fingerprints are "
                             "cross-checked per lease)")
    worker.add_argument("--connect", required=True, metavar="HOST:PORT",
                        help="the coordinator's address")
    worker.add_argument("--worker-id", default=None, metavar="ID",
                        help="worker name in the coordinator's stats "
                             "(default: fleet-<pid>)")
    worker.add_argument("--token", required=True, metavar="TOKEN",
                        help="the coordinator's session token "
                             "(stray connections are refused)")
    serve = commands.add_parser(
        "serve",
        help="run the verification-as-a-service daemon "
             "(HTTP API + shared verdict database; see docs/service.md)",
    )
    serve.add_argument("--config", required=True, metavar="TOML",
                       help="campaign config with an optional "
                            "[service] section")
    serve.add_argument("--host", default=None, metavar="HOST",
                       help="bind address (overrides [service] host)")
    serve.add_argument("--port", default=None, type=int, metavar="PORT",
                       help="bind port (overrides [service] port; "
                            "0 = ephemeral)")
    serve.add_argument("--import-cache", action="append", default=[],
                       metavar="JSON", dest="import_caches",
                       help="migrate a per-campaign ResultCache JSON "
                            "file into the verdict database before "
                            "serving (repeatable)")
    submit = commands.add_parser(
        "submit",
        help="submit the campaign config to a running service daemon "
             "and wait for the verdict",
    )
    submit.add_argument("--config", required=True, metavar="TOML",
                        help="campaign config to submit")
    submit.add_argument("--url", default=None, metavar="URL",
                        help="the daemon's address (default: derived "
                             "from the config's [service] section)")
    submit.add_argument("--tenant", default="default", metavar="NAME",
                        help="metering tenant for /metrics")
    submit.add_argument("--watch", action="store_true",
                        help="stream one line per checked property "
                             "while the campaign runs")
    submit.add_argument("--timeout", default=600.0, type=float,
                        metavar="SECS",
                        help="give up waiting after this long "
                             "(default: 600)")
    return parser


#: ``--config preset:NAME`` resolves into this library directory
PRESET_NAMES = ("smoke", "nightly", "full")


def resolve_config_path(spec: str) -> str:
    """A ``--config`` value: a TOML path, or ``preset:NAME`` resolving
    to the preset library ``examples/presets/NAME.toml``."""
    if not spec.startswith("preset:"):
        return spec
    import os
    name = spec[len("preset:"):]
    if name not in PRESET_NAMES:
        raise ConfigError(
            f"unknown preset {name!r}; available presets: "
            f"{', '.join(PRESET_NAMES)}"
        )
    root = os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))))
    path = os.path.join(root, "examples", "presets", f"{name}.toml")
    if not os.path.exists(path):
        raise ConfigError(
            f"preset {name!r} expected at {path} — presets ship with "
            f"the repository checkout, not the installed package"
        )
    return path


def _print_counters(title: str, counters: dict, indent: str = "  ") -> None:
    """One warm-state counter block: ``title: k=v k=v ...`` (skipped
    entirely when the feature was off and shipped no counters)."""
    flat = {key: value for key, value in counters.items()
            if isinstance(value, int)}
    if not flat:
        return
    body = " ".join(f"{key}={value}" for key, value in flat.items())
    print(f"{indent}{title}: {body}")


def _blocks(config: CampaignConfig):
    """The chip scope the config selects (late import: the CLI is the
    only orchestrate consumer that knows about the chip layer)."""
    from .chip import ComponentChip
    only = list(config.blocks) if config.blocks is not None else None
    return ComponentChip(only_blocks=only).blocks


def _run(config: CampaignConfig, resume: bool, progress: bool,
         show_stats: bool = False) -> int:
    from .core.report import format_status_summary, format_table2
    from .orchestrate import CampaignOrchestrator

    if resume and config.checkpoint_path is None:
        print("error: resume needs [checkpoint] path in the config",
              file=sys.stderr)
        return 2
    orchestrator = CampaignOrchestrator(_blocks(config), config=config)
    report = orchestrator.run(
        progress=print if progress else None, resume=resume
    )
    stats = report.stats
    print(format_table2(report))
    print()
    print(format_status_summary(report))
    print()
    print(f"executor:       {stats['executor']} "
          f"(scheduling={stats['scheduling']}, "
          f"portfolio={stats['portfolio_policy']})")
    print(f"jobs:           {stats['jobs']} "
          f"({stats['journal_replayed']} journal-replayed, "
          f"{stats['cache_hits']} cache hits)")
    if stats["engine_attempts"]:
        attempts = ", ".join(
            f"{method}={count}" for method, count
            in sorted(stats["engine_attempts"].items())
        )
        print(f"engine attempts: {attempts} "
              f"({stats['portfolio_reordered']} reordered by policy)")
    if show_stats:
        # the versioned counter schema — the same groups /metrics and
        # the benchmark records serve (see repro.orchestrate.stats)
        from .orchestrate.stats import counter_groups
        print(f"counters ({stats.get('stats_schema', 'unversioned')}):")
        for group, counters in counter_groups(stats).items():
            _print_counters(group, counters)
    print(f"config digest:  {stats['config_digest']}")
    # gate CI on the verification outcome, like the benchmarks do:
    # a campaign that surfaced a FAIL (or starved into TIMEOUT) must
    # not exit green
    return 0 if report.all_passed else 1


def _report(config: CampaignConfig, show_stats: bool = False) -> int:
    """Read-only campaign status: how much is already settled."""
    from .orchestrate import CampaignOrchestrator, plan_digest

    orchestrator = CampaignOrchestrator(_blocks(config), config=config)
    plan = orchestrator.plan()
    journaled = {}
    if orchestrator.checkpoint is not None:
        journaled = orchestrator.checkpoint.load(
            plan_digest(plan), plan.total_jobs
        )
    cached = 0
    if orchestrator.cache is not None:
        cached = sum(
            job.fingerprint in orchestrator.cache
            for job in plan.jobs if job.index not in journaled
        )
    remaining = plan.total_jobs - len(journaled) - cached
    print(f"campaign over blocks "
          f"{', '.join(plan.block_order) or '(none)'}: "
          f"{plan.total_jobs} jobs across "
          f"{len(plan.modules_planned())} modules")
    print(f"  journal:  {len(journaled)} replayable "
          f"({config.checkpoint_path or 'not configured'})")
    print(f"  cache:    {cached} hits pending "
          f"({config.cache_path or 'not configured'})")
    print(f"  to run:   {remaining}")
    if show_stats and journaled:
        # aggregate journaled solver telemetry without replaying a
        # single engine: each entry's result carried its SAT counters
        sat_totals: dict = {}
        for entry in journaled.values():
            result_stats = (entry.get("result") or {}).get("stats")
            sat = result_stats.get("sat") \
                if isinstance(result_stats, dict) else None
            if not isinstance(sat, dict):
                continue
            for key, value in sat.items():
                # nested base/step splits stay out of the totals —
                # their counters are already in the merged top level
                if isinstance(value, int):
                    sat_totals[key] = sat_totals.get(key, 0) + value
        _print_counters("journaled sat totals", sat_totals)
    print(f"  config digest: {config.digest()}")
    return 0


def _sweep(config: CampaignConfig, record_path: Optional[str],
           progress: bool, warm_golden: bool = False) -> int:
    """Run the configured mutation sweep and print its record summary.

    The exit code gates CI on the methodology's quality bar: 0 when
    every seeded mutant was detected *and* (in triage mode) every sim
    FAIL was confirmed formally, 1 otherwise.
    """
    import json

    from .scenario import canonical_record_bytes, record_digest, \
        sweep_from_config

    try:
        record, _report_obj = sweep_from_config(
            config, progress=print if progress else None,
            warm_golden=warm_golden,
        )
    except ValueError as exc:
        # covers ConfigError plus the scenario layer's own validation
        # (bad family shape, unknown defect class)
        print(f"error: {exc}", file=sys.stderr)
        return 2
    detection = record["detection"]
    print(f"family:         {record['family']['name']} "
          f"(digest {record['family_digest'][:12]})")
    print(f"defect classes: {', '.join(record['defect_classes'])}")
    print(f"mutants:        {detection['total']} seeded, "
          f"{detection['detected']} detected "
          f"(rate {detection['rate']:.3f})")
    if detection["survivors"]:
        print("survivors:")
        for site_id in detection["survivors"]:
            print(f"  {site_id}")
    triage = record["triage"]
    agreed = True
    if triage is not None:
        agreed = triage["formal_confirms_sim"]
        replayed = sum(1 for name in triage["replayed"].values()
                       if name is not None)
        print(f"triage:         {len(triage['screened'])} sim-screened "
              f"over {triage['sim_cycles']} cycles, "
              f"{replayed} counterexamples replayed formally, "
              f"sim->formal agreement "
              f"{'holds' if agreed else 'VIOLATED'}")
        for site_id in triage["disagreements"]:
            print(f"  disagreement: {site_id}")
    timing = record["timing"]
    warm_note = ""
    if timing.get("golden") is not None:
        warm_note = (f" (golden pre-run executed "
                     f"{timing['golden']['jobs_executed']} of "
                     f"{timing['golden']['jobs']})")
    print(f"jobs:           {timing['jobs_executed']} executed of "
          f"{timing['jobs']} planned, {timing['cone_hits']} cone hits"
          f"{warm_note}")
    print(f"record digest:  {record_digest(record)} "
          f"({len(canonical_record_bytes(record))} canonical bytes)")
    print(f"config digest:  {record['config_digest']}")
    if record_path is not None:
        with open(record_path, "w", encoding="utf-8") as handle:
            json.dump(record, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"record written: {record_path}")
    return 0 if not detection["survivors"] and agreed else 1


def _serve(config: CampaignConfig, host: Optional[str],
           port: Optional[int], import_caches: List[str]) -> int:
    """Run the service daemon in the foreground until interrupted."""
    from .service import ServiceDaemon

    daemon = ServiceDaemon(config, host=host, port=port)
    for cache_path in import_caches:
        imported = daemon.db.import_cache(cache_path)
        print(f"imported {imported} verdicts from {cache_path}")
    print(f"verdict db:     {daemon.db.path} "
          f"({len(daemon.db)} verdicts)")
    print(f"serving on:     {daemon.url}")
    print(f"config digest:  {config.digest()}", flush=True)
    try:
        daemon.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        daemon.close()
    return 0


def _submit(config: CampaignConfig, url: Optional[str], tenant: str,
            watch: bool, timeout: float) -> int:
    """Submit to a running daemon; exit codes mirror ``campaign run``."""
    from .service import DEFAULT_HOST, DEFAULT_PORT, ServiceClient, \
        ServiceError

    if url is None:
        host = config.service_host or DEFAULT_HOST
        port = config.service_port or DEFAULT_PORT
        url = f"http://{host}:{port}"
    client = ServiceClient(url)
    try:
        ticket = client.submit(config, tenant=tenant)
        print(f"campaign:       {ticket['id']} "
              f"({'deduped onto in-flight run' if ticket['deduped'] else 'accepted'})")
        if watch:
            status = None
            for message in client.watch(ticket["id"]):
                if "event" in message:
                    print(message["event"])
                else:
                    status = message["status"]
            if status is None:
                status = client.status(ticket["id"])
        else:
            status = client.wait(ticket["id"], timeout=timeout)
    except ServiceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if status["state"] != "done":
        print(f"error: campaign {status['state']}: "
              f"{status.get('error', 'unknown failure')}",
              file=sys.stderr)
        return 1
    print(f"verdict:        "
          f"{'all passed' if status['all_passed'] else 'FAILURES'} "
          f"({status['jobs']} jobs: {status['executed']} executed, "
          f"{status['verdict_hits']} verdict hits, "
          f"{status['journal_replayed']} journal-replayed)")
    print(f"config digest:  {status['config_digest']}")
    return 0 if status["all_passed"] else 1


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    try:
        config = CampaignConfig.load(resolve_config_path(args.config))
    except ConfigError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.command == "serve":
        return _serve(config, host=args.host, port=args.port,
                      import_caches=args.import_caches)
    if args.command == "submit":
        return _submit(config, url=args.url, tenant=args.tenant,
                       watch=args.watch, timeout=args.timeout)
    if args.command == "fleet":
        import os

        from .orchestrate.fleet import run_fleet_worker
        try:
            return run_fleet_worker(
                config, connect=args.connect,
                worker_id=args.worker_id or f"fleet-{os.getpid()}",
                token=args.token,
            )
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    if args.command == "scenario":
        return _sweep(config, record_path=args.record,
                      progress=args.progress,
                      warm_golden=args.warm_golden)
    if args.action == "report":
        return _report(config, show_stats=args.stats)
    return _run(config, resume=args.action == "resume",
                progress=args.progress, show_stats=args.stats)


if __name__ == "__main__":
    sys.exit(main())
