"""Verification as a service — daemon, queue, verdict database, client.

The service layer turns the batch campaign CLI into a long-running
daemon: clients submit campaign configs over HTTP, identical in-flight
submissions collapse onto one run, and every settled job verdict lands
in a shared content-addressed SQLite database so any client anywhere
re-submitting an identical (RTL, PSL, engine-config) triple gets an
instant cached verdict instead of a re-check.

The pieces, bottom up:

- :mod:`repro.service.db` — :class:`VerdictDatabase`, the WAL-mode
  SQLite verdict store.  Interface-compatible with the per-campaign
  :class:`~repro.orchestrate.cache.ResultCache` (it *is* the
  orchestrator's cache when the daemon runs a campaign), plus raw
  provenance reads, metering counters, and a JSON-cache importer.
- :mod:`repro.service.queue` — :class:`CampaignQueue`, the async
  submission path: config-digest dedup of in-flight campaigns, one
  checkpoint-journaled orchestrator run per unique config, per-tenant
  metering.
- :mod:`repro.service.api` — :class:`ServiceDaemon`, the
  ``ThreadingHTTPServer`` JSON boundary (``/v1/campaigns``,
  ``/v1/verdicts``, ``/healthz``, ``/metrics``).
- :mod:`repro.service.client` — :class:`ServiceClient`, the
  ``urllib`` bridge the CLI's ``serve``/``submit`` commands and the CI
  smoke job drive.

See ``docs/service.md`` for the endpoint table, deployment notes, and
the verdict-database migration path.
"""

from .api import DEFAULT_HOST, DEFAULT_PORT, SERVICE_ENDPOINTS, \
    ServiceDaemon
from .client import ServiceClient, ServiceError
from .db import VerdictDatabase
from .queue import CampaignQueue, CampaignRun

__all__ = [
    "DEFAULT_HOST",
    "DEFAULT_PORT",
    "SERVICE_ENDPOINTS",
    "ServiceDaemon",
    "ServiceClient",
    "ServiceError",
    "VerdictDatabase",
    "CampaignQueue",
    "CampaignRun",
]
