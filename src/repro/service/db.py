"""The shared verdict database — SQLite-backed, fingerprint-keyed.

:class:`VerdictDatabase` is the server-grade successor of the
per-campaign JSON :class:`~repro.orchestrate.cache.ResultCache`: one
WAL-mode SQLite file shared by every campaign the service daemon runs,
keyed by the same :func:`~repro.orchestrate.job.job_fingerprint`
content hashes and speaking the same serialized-:class:`CheckResult`
dialect (:func:`~repro.orchestrate.job.encode_result` /
:func:`decode_result`).  Because the interface matches the cache's —
``store`` / ``lookup`` / ``flush`` / ``__contains__`` /
``engine_history`` — the database drops straight into
``CampaignOrchestrator(cache=...)``: the orchestrator's partition
logic, the adaptive portfolio policy, and the FAIL-must-replay decode
path all run unchanged against the shared store.

What changes versus the JSON cache:

- **Durability per verdict, not per flush.**  Every ``store`` is its
  own committed transaction (WAL journal), so a daemon SIGKILL loses
  at most the verdict in flight — the flush-merge/flock machinery the
  JSON store needs is simply not required, and ``flush()`` is a WAL
  checkpoint.
- **Provenance is queryable.**  Module, category, engine, status, and
  the ``stored_at`` stamp are real columns next to the entry payload,
  which is what ``GET /v1/verdicts/<fingerprint>`` serves.
- **Concurrent readers.**  One connection, guarded by a lock, shared
  by the submission queue's worker and the HTTP handler threads.

The safety rules are the cache's, verbatim: the schema version *and*
the ``repro`` package version are pinned in a ``meta`` table and the
store is discarded wholesale on mismatch; an unreadable database file
is deleted and recreated (degrade to miss, never a wrong verdict); a
cached FAIL must replay its counterexample against freshly compiled
RTL on every hit or the row is evicted.

:meth:`import_cache` migrates an existing ``ResultCache`` JSON file
into the database (newest verdict per fingerprint wins), so a fleet of
per-campaign caches consolidates into one service store.
"""

from __future__ import annotations

import json
import os
import sqlite3
import threading
import time
from typing import Dict, Optional, Tuple

from .. import __version__
from ..formal.engine import CheckResult
from ..orchestrate.cache import ResultCache, _stored_at, _winning_method
from ..orchestrate.job import CheckJob, decode_result, encode_result


class VerdictDatabase:
    """SQLite store of check verdicts keyed by content fingerprint.

    Drop-in for :class:`~repro.orchestrate.cache.ResultCache` wherever
    the orchestrator consumes one; additionally serves raw provenance
    rows (:meth:`get`) and metering counters (:meth:`stats`) to the
    service API layer.
    """

    # v2: verdicts gained the ``cone`` provenance column (the COI
    # digest a cone-fingerprinted verdict was keyed under); the version
    # pin wipes v1 stores — degrade to miss, the cache's standing rule
    SCHEMA_VERSION = 2

    def __init__(self, path: str) -> None:
        self.path = str(path)
        directory = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(directory, exist_ok=True)
        self._lock = threading.RLock()
        self._conn: Optional[sqlite3.Connection] = None
        #: metering counters served by /metrics
        self._counters = {
            "hits": 0, "misses": 0, "stored": 0, "unsafe_evicted": 0,
            "imported": 0, "resets": 0,
        }
        self._open()

    # -- connection / schema -------------------------------------------
    def _open(self) -> None:
        """Open (or recover) the database; corruption and version
        mismatches degrade to an empty store, never a wrong verdict."""
        try:
            self._connect()
        except sqlite3.Error:
            self._reset()

    def _connect(self) -> None:
        # autocommit (isolation_level=None): every store is durable on
        # its own, which is what makes a daemon SIGKILL lose at most
        # the verdict in flight
        conn = sqlite3.connect(self.path, check_same_thread=False,
                               isolation_level=None)
        conn.execute("PRAGMA journal_mode=WAL")
        conn.execute("PRAGMA synchronous=NORMAL")
        conn.execute(
            "CREATE TABLE IF NOT EXISTS meta ("
            " key TEXT PRIMARY KEY, value TEXT NOT NULL)"
        )
        conn.execute(
            "CREATE TABLE IF NOT EXISTS verdicts ("
            " fingerprint TEXT PRIMARY KEY,"
            " entry TEXT NOT NULL,"       # encode_result payload (JSON)
            " module TEXT,"
            " category TEXT,"
            " engine TEXT,"
            " status TEXT,"
            " cone TEXT,"
            " stored_at REAL NOT NULL)"
        )
        rows = dict(conn.execute("SELECT key, value FROM meta"))
        expected = {"schema": str(self.SCHEMA_VERSION),
                    "repro_version": __version__}
        if rows != expected:
            if rows:
                # written by another schema or package version — the
                # fingerprint covers engine configuration, not engine
                # implementation, so the verdicts cannot be trusted
                self._counters["resets"] += 1
            conn.execute("DELETE FROM verdicts")
            conn.execute("DELETE FROM meta")
            conn.executemany(
                "INSERT INTO meta (key, value) VALUES (?, ?)",
                sorted(expected.items()),
            )
        # surface latent page corruption now, not on first lookup
        conn.execute("SELECT COUNT(*) FROM verdicts").fetchone()
        self._conn = conn

    def _reset(self) -> None:
        """Delete the database files and start empty (degrade to
        miss) — the recovery path for any unreadable store."""
        if self._conn is not None:
            try:
                self._conn.close()
            except sqlite3.Error:
                pass
            self._conn = None
        for suffix in ("", "-wal", "-shm"):
            try:
                os.remove(self.path + suffix)
            except OSError:
                pass
        self._counters["resets"] += 1
        self._connect()

    def _execute(self, sql: str, params: Tuple = ()):
        """Run one statement under the lock; a corrupt database heals
        itself to empty and the statement re-runs against the fresh
        store."""
        with self._lock:
            try:
                return self._conn.execute(sql, params)
            except sqlite3.DatabaseError:
                self._reset()
                return self._conn.execute(sql, params)

    def close(self) -> None:
        with self._lock:
            if self._conn is not None:
                self._conn.close()
                self._conn = None

    # -- the ResultCache interface -------------------------------------
    def __len__(self) -> int:
        return self._execute("SELECT COUNT(*) FROM verdicts").fetchone()[0]

    def __contains__(self, fingerprint: str) -> bool:
        row = self._execute(
            "SELECT 1 FROM verdicts WHERE fingerprint = ?",
            (fingerprint,),
        ).fetchone()
        return row is not None

    def store(self, fingerprint: str, result: CheckResult,
              job: Optional[CheckJob] = None) -> None:
        """Record one verdict (trace frames included for FAIL),
        committed immediately.  Same entry shape as the JSON cache —
        ``stored_at`` stamp plus module/category provenance when the
        producing ``job`` is given."""
        entry = encode_result(result)
        entry["stored_at"] = time.time()
        if job is not None:
            entry["module"] = job.module.name
            entry["category"] = job.category
            if job.cone_digest:
                entry["cone"] = job.cone_digest
        self._insert(fingerprint, entry)
        self._counters["stored"] += 1

    def _insert(self, fingerprint: str, entry: dict) -> None:
        self._execute(
            "INSERT OR REPLACE INTO verdicts"
            " (fingerprint, entry, module, category, engine, status,"
            "  cone, stored_at)"
            " VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
            (
                fingerprint,
                json.dumps(entry, default=repr),
                entry.get("module"),
                entry.get("category"),
                entry.get("engine"),
                entry.get("status"),
                entry.get("cone"),
                _stored_at(entry),
            ),
        )

    def lookup(self, fingerprint: str, job: CheckJob,
               store=None) -> Optional[CheckResult]:
        """The cache's lookup contract: the stored verdict, or ``None``
        when absent or not provably sound.  A FAIL hit recompiles the
        assertion (``store`` amortises the compiles) and must replay
        its counterexample; anything suspicious evicts the row and
        degrades to a miss."""
        row = self._execute(
            "SELECT entry FROM verdicts WHERE fingerprint = ?",
            (fingerprint,),
        ).fetchone()
        if row is None:
            self._counters["misses"] += 1
            return None
        try:
            entry = json.loads(row[0])
            if not isinstance(entry, dict):
                raise ValueError("verdict entry is not an object")
            result = decode_result(entry, job, store)
        except Exception:
            # malformed row, unknown status, failed replay — evict and
            # re-check, never a wrong verdict
            self._execute(
                "DELETE FROM verdicts WHERE fingerprint = ?",
                (fingerprint,),
            )
            self._counters["unsafe_evicted"] += 1
            self._counters["misses"] += 1
            return None
        self._counters["hits"] += 1
        return result

    def flush(self) -> None:
        """Stores are already durable (autocommit + WAL); flush folds
        the WAL back into the main database file so the store is one
        self-contained file between campaigns."""
        with self._lock:
            try:
                self._conn.execute("PRAGMA wal_checkpoint(TRUNCATE)")
            except sqlite3.DatabaseError:
                self._reset()

    def engine_history(self) -> Dict[Tuple[Optional[str], str], str]:
        """Historical winning engines for the adaptive portfolio
        policy — same aggregation as the JSON cache's, scanned in
        ``stored_at`` recency order so the newest verdict wins."""
        history: Dict[Tuple[Optional[str], str], str] = {}
        rows = self._execute(
            "SELECT entry FROM verdicts ORDER BY stored_at ASC, "
            "rowid ASC"
        ).fetchall()
        for (payload,) in rows:
            try:
                entry = json.loads(payload)
            except ValueError:
                continue
            if not isinstance(entry, dict):
                continue
            method = _winning_method(entry)
            if method is None:
                continue
            category = entry.get("category")
            if not isinstance(category, str):
                continue
            history[(None, category)] = method
            module = entry.get("module")
            if isinstance(module, str):
                history[(module, category)] = method
        return history

    # -- service extensions --------------------------------------------
    def get(self, fingerprint: str) -> Optional[dict]:
        """The raw stored verdict with provenance, as served by
        ``GET /v1/verdicts/<fingerprint>`` — no replay validation (the
        payload is data about the store, not a trusted verdict; a
        campaign consuming it goes through :meth:`lookup`)."""
        row = self._execute(
            "SELECT entry, module, category, engine, status, cone,"
            " stored_at"
            " FROM verdicts WHERE fingerprint = ?",
            (fingerprint,),
        ).fetchone()
        if row is None:
            return None
        try:
            entry = json.loads(row[0])
        except ValueError:
            entry = None
        return {
            "fingerprint": fingerprint,
            "module": row[1],
            "category": row[2],
            "engine": row[3],
            "status": row[4],
            "cone": row[5],
            "stored_at": row[6],
            "entry": entry if isinstance(entry, dict) else None,
        }

    def import_cache(self, path: str) -> int:
        """Migrate a :class:`ResultCache` JSON file into the database.

        Entries land newest-verdict-wins: a fingerprint already present
        keeps whichever side carries the later ``stored_at`` stamp.
        Returns how many entries were imported; an unreadable file, or
        one written by a different cache/package version, imports
        nothing (the cache's own wholesale-discard rule).
        """
        try:
            with open(path, "r", encoding="utf-8") as handle:
                raw = json.load(handle)
        except (OSError, ValueError):
            return 0
        if not isinstance(raw, dict) \
                or raw.get("version") != ResultCache.VERSION \
                or raw.get("repro_version") != __version__:
            return 0
        entries = raw.get("entries")
        if not isinstance(entries, dict):
            return 0
        imported = 0
        for fingerprint, entry in entries.items():
            if not isinstance(fingerprint, str) \
                    or not isinstance(entry, dict):
                continue
            row = self._execute(
                "SELECT stored_at FROM verdicts WHERE fingerprint = ?",
                (fingerprint,),
            ).fetchone()
            if row is not None and row[0] >= _stored_at(entry):
                continue
            self._insert(fingerprint, entry)
            imported += 1
        self._counters["imported"] += imported
        return imported

    def stats(self) -> Dict[str, int]:
        """Metering counters plus the live row count, for /metrics."""
        counters = dict(self._counters)
        counters["entries"] = len(self)
        return counters
