"""The service submission queue — dedup in flight, drain through the
configured executor, journal every served campaign.

:class:`CampaignQueue` is the daemon's async request path.  Clients
submit a full :class:`~repro.orchestrate.config.CampaignConfig`; the
queue keys each submission by the config's content digest and dedupes
*in flight*: a second client posting an identical config while the
first is queued or running is attached to the same
:class:`CampaignRun` instead of scheduling a duplicate — one
underlying job run, every subscriber sees the same report bytes.

Job-level dedup falls out of the shared
:class:`~repro.service.db.VerdictDatabase`: the queue's worker runs
one campaign at a time through a stock
:class:`~repro.orchestrate.CampaignOrchestrator` wired with the
verdict database as its cache, so any job fingerprint ever settled —
by an earlier campaign, a different tenant, or an imported per-campaign
cache — partitions out as an instant verdict hit, and only genuine
misses reach the configured executor (``serial``, the pools, or
``fleet:N``; the config decides, the queue does not care).

Every served campaign is checkpoint-journaled under the service data
directory (``journal-<digest>.jsonl``), exactly like a CLI campaign:
a daemon SIGKILL mid-run leaves a valid journal prefix, and
re-submitting the same config to a restarted daemon resumes from it
(``run(resume=True)``) into byte-identical report bytes.  The journal
is removed once its campaign completes — a completed campaign's
verdicts live in the database, so a re-submission is served as a 100%
verdict-cache hit with zero jobs executed, which is the service's
whole point.

Per-tenant metering (submissions, dedup attaches, completions,
failures, jobs executed, verdict hits) accumulates in the queue and is
served by ``GET /metrics``.
"""

from __future__ import annotations

import collections
import os
import threading
import time
from typing import Callable, Dict, List, Optional, Tuple

from ..orchestrate import CampaignCheckpoint, CampaignOrchestrator
from ..orchestrate.config import CampaignConfig
from ..orchestrate.stats import STATS_SCHEMA, counter_groups
from .db import VerdictDatabase

#: submission states, in lifecycle order
QUEUED, RUNNING, DONE, ERROR = "queued", "running", "done", "error"


def _default_blocks(config: CampaignConfig):
    """The chip scope a config selects — the CLI's resolution, shared
    (late import: the service is chip-agnostic except right here)."""
    from ..chip import ComponentChip
    only = list(config.blocks) if config.blocks is not None else None
    return ComponentChip(only_blocks=only).blocks


class CampaignRun:
    """One submitted campaign: identity, lifecycle state, progress
    events, and (when finished) the canonical outcome."""

    def __init__(self, run_id: str, config: CampaignConfig,
                 tenant: str) -> None:
        self.id = run_id
        self.config = config
        self.config_digest = config.digest()
        self.tenant = tenant
        self.state = QUEUED
        self.submitted_at = time.time()
        self.error: Optional[str] = None
        #: one line per checked property, in plan order
        self.events: List[str] = []
        #: set when the run reaches DONE: canonical_bytes as text,
        #: pass/fail, and the versioned counter groups
        self.canonical: Optional[str] = None
        self.all_passed: Optional[bool] = None
        self.seconds: Optional[float] = None
        self.jobs: Optional[int] = None
        self.executed: Optional[int] = None
        self.verdict_hits: Optional[int] = None
        self.journal_replayed: Optional[int] = None
        self.counter_groups: Optional[Dict[str, Dict[str, int]]] = None
        self.finished = threading.Event()
        #: notified on every event append and state change — what the
        #: streaming status endpoint blocks on
        self.changed = threading.Condition()

    def snapshot(self) -> dict:
        """The status payload of ``GET /v1/campaigns/<id>``."""
        payload = {
            "id": self.id,
            "state": self.state,
            "tenant": self.tenant,
            "config_digest": self.config_digest,
            "submitted_at": self.submitted_at,
            "events": len(self.events),
        }
        if self.error is not None:
            payload["error"] = self.error
        if self.state == DONE:
            payload.update({
                "all_passed": self.all_passed,
                "canonical": self.canonical,
                "seconds": self.seconds,
                "jobs": self.jobs,
                "executed": self.executed,
                "verdict_hits": self.verdict_hits,
                "journal_replayed": self.journal_replayed,
                "stats_schema": STATS_SCHEMA,
                "counter_groups": self.counter_groups,
            })
        return payload

    def _note(self, line: str) -> None:
        with self.changed:
            self.events.append(line)
            self.changed.notify_all()

    def _transition(self, state: str) -> None:
        with self.changed:
            self.state = state
            self.changed.notify_all()
        if state in (DONE, ERROR):
            self.finished.set()


class CampaignQueue:
    """Single-worker submission queue over a shared verdict database.

    ``blocks_provider`` maps a config to the blocks to campaign over
    (defaults to the component chip — tests substitute tiny scopes);
    ``throttle`` sleeps that many seconds per progress event, a fault-
    injection hook that widens the window for kill-mid-run tests.
    """

    def __init__(self, db: VerdictDatabase, data_dir: str,
                 blocks_provider: Optional[Callable] = None,
                 throttle: float = 0.0) -> None:
        self.db = db
        self.data_dir = str(data_dir)
        os.makedirs(self.data_dir, exist_ok=True)
        self._blocks = blocks_provider or _default_blocks
        self._throttle = throttle
        self._lock = threading.Lock()
        self._pending = collections.deque()
        self._wakeup = threading.Condition(self._lock)
        self._runs: Dict[str, CampaignRun] = {}
        #: config digest -> in-flight run (queued or running); the
        #: dedup index — entries leave when their run finishes
        self._in_flight: Dict[str, CampaignRun] = {}
        self._tenants: Dict[str, Dict[str, int]] = {}
        self._seq = 0
        self._closed = False
        self._worker = threading.Thread(target=self._drain,
                                        name="campaign-queue",
                                        daemon=True)
        self._worker.start()

    # -- submission ----------------------------------------------------
    def submit(self, config: CampaignConfig,
               tenant: str = "default") -> Tuple[CampaignRun, bool]:
        """Enqueue a campaign; returns ``(run, deduped)``.

        ``deduped`` is True when an identical config (same content
        digest) was already in flight and this submission attached to
        it — the defining service behaviour: N clients, one run.
        """
        digest = config.digest()
        with self._lock:
            if self._closed:
                raise RuntimeError("queue is shut down")
            meter = self._tenants.setdefault(tenant, {
                "submissions": 0, "deduped": 0, "completed": 0,
                "failed": 0, "jobs_executed": 0, "verdict_hits": 0,
            })
            meter["submissions"] += 1
            existing = self._in_flight.get(digest)
            if existing is not None:
                meter["deduped"] += 1
                return existing, True
            self._seq += 1
            run = CampaignRun(f"c{self._seq:06d}-{digest[:12]}",
                              config, tenant)
            self._runs[run.id] = run
            self._in_flight[digest] = run
            self._pending.append(run)
            self._wakeup.notify_all()
            return run, False

    def get(self, run_id: str) -> Optional[CampaignRun]:
        with self._lock:
            return self._runs.get(run_id)

    def journal_path(self, config: CampaignConfig) -> str:
        """Where a config's served campaign journals — keyed by config
        digest, so a restarted daemon resumes exactly the campaign the
        killed one was running."""
        return os.path.join(self.data_dir,
                            f"journal-{config.digest()}.jsonl")

    # -- the worker ----------------------------------------------------
    def _drain(self) -> None:
        while True:
            with self._lock:
                while not self._pending and not self._closed:
                    self._wakeup.wait()
                if self._closed and not self._pending:
                    return
                run = self._pending.popleft()
            self._serve(run)
            with self._lock:
                if self._in_flight.get(run.config_digest) is run:
                    del self._in_flight[run.config_digest]

    def _serve(self, run: CampaignRun) -> None:
        run._transition(RUNNING)

        def progress(line: str) -> None:
            run._note(line)
            if self._throttle:
                time.sleep(self._throttle)

        try:
            blocks = self._blocks(run.config)
            orchestrator = CampaignOrchestrator(
                blocks, config=run.config,
                cache=self.db,
                checkpoint=CampaignCheckpoint(
                    self.journal_path(run.config)),
            )
            # resume=True always: a journal left by a killed daemon
            # replays its valid prefix; no journal (the normal case)
            # degrades to a plain full run
            report = orchestrator.run(progress=progress, resume=True)
        except Exception as exc:  # the journal stays for the resume
            run.error = f"{type(exc).__name__}: {exc}"
            with self._lock:
                self._tenants[run.tenant]["failed"] += 1
            run._transition(ERROR)
            return
        stats = report.stats
        run.canonical = report.canonical_bytes().decode("utf-8")
        run.all_passed = report.all_passed
        run.seconds = report.seconds
        run.jobs = stats["jobs"]
        run.executed = stats["cache_misses"]
        run.verdict_hits = stats["cache_hits"]
        run.journal_replayed = stats["journal_replayed"]
        run.counter_groups = counter_groups(stats)
        with self._lock:
            meter = self._tenants[run.tenant]
            meter["completed"] += 1
            meter["jobs_executed"] += run.executed
            meter["verdict_hits"] += run.verdict_hits
        # the campaign's verdicts are in the database now — drop the
        # journal so a re-submission is served from verdicts (zero
        # jobs executed), not replayed from a stale journal
        try:
            os.remove(self.journal_path(run.config))
        except OSError:
            pass
        run._transition(DONE)

    # -- introspection -------------------------------------------------
    def metrics(self) -> dict:
        """Per-tenant metering plus queue totals, for /metrics."""
        with self._lock:
            tenants = {name: dict(meter)
                       for name, meter in self._tenants.items()}
            totals: Dict[str, int] = {}
            for meter in tenants.values():
                for key, value in meter.items():
                    totals[key] = totals.get(key, 0) + value
            return {
                "tenants": tenants,
                "totals": totals,
                "runs": len(self._runs),
                "in_flight": len(self._in_flight),
            }

    def close(self, timeout: float = 10.0) -> None:
        """Stop accepting submissions and let the worker finish the
        backlog (bounded by ``timeout``)."""
        with self._lock:
            self._closed = True
            self._wakeup.notify_all()
        self._worker.join(timeout)
