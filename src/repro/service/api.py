"""The verification-as-a-service HTTP boundary.

:class:`ServiceDaemon` hosts the whole service on a stdlib
``ThreadingHTTPServer``: one shared
:class:`~repro.service.db.VerdictDatabase`, one
:class:`~repro.service.queue.CampaignQueue`, and a JSON API.  The
endpoint surface (the table :data:`SERVICE_ENDPOINTS` is what
``docs/service.md`` is drift-checked against):

- ``POST /v1/campaigns`` — submit a campaign by config.  The body is
  ``{"config": {...}}`` (the nested ``CampaignConfig.to_dict`` form)
  or ``{"config_toml": "..."}`` (a TOML file's text), plus an optional
  ``"tenant"`` (the ``X-Tenant`` header works too).  Responds 202 with
  the run id; an identical config already in flight responds with the
  *same* run id and ``"deduped": true``.  400 names the config error.
- ``GET /v1/campaigns/<id>`` — status snapshot.  ``?wait=SECS``
  long-polls until the run finishes (or the wait elapses);
  ``?watch=1`` streams progress as newline-delimited JSON — one
  ``{"event": ...}`` line per checked property, closed by one
  ``{"status": {...}}`` line when the run settles.
- ``GET /v1/verdicts/<fingerprint>`` — the raw stored verdict with
  provenance (module, category, engine, status, stored-at), 404 when
  the fingerprint is unknown.
- ``GET /healthz`` — liveness: ok, uptime, verdict count.
- ``GET /metrics`` — the versioned counter schema
  (:data:`~repro.orchestrate.stats.STATS_SCHEMA`): per-tenant
  metering from the queue plus the database's hit/miss/evict
  counters.

The daemon is embeddable (``ServiceDaemon(config).start()`` in tests)
and standalone (``python -m repro serve``, which calls
:meth:`serve_forever`).  Bind address, port, database path, and data
directory resolve from the config's ``[service]`` section, with
defaults chosen for a localhost deployment.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Tuple
from urllib.parse import parse_qs, urlparse

from .. import __version__
from ..orchestrate.config import CampaignConfig, ConfigError
from ..orchestrate.stats import STATS_SCHEMA
from .db import VerdictDatabase
from .queue import DONE, ERROR, CampaignQueue

DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 8357
DEFAULT_DATA_DIR = "out/service"

#: (method, path template, summary) — the public surface, one row per
#: endpoint; docs/service.md must document every row
#: (tools/check_docs.py enforces it)
SERVICE_ENDPOINTS = (
    ("POST", "/v1/campaigns",
     "submit a campaign by config; dedupes identical in-flight configs"),
    ("GET", "/v1/campaigns/<id>",
     "status snapshot; ?wait=SECS long-poll, ?watch=1 NDJSON stream"),
    ("GET", "/v1/verdicts/<fingerprint>",
     "raw stored verdict with provenance"),
    ("GET", "/healthz", "liveness and verdict count"),
    ("GET", "/metrics",
     "versioned counters: per-tenant metering + verdict-db stats"),
)


class ServiceDaemon:
    """The long-running service: verdict database + submission queue +
    HTTP server, owned together and shut down together."""

    def __init__(self, config: Optional[CampaignConfig] = None, *,
                 host: Optional[str] = None,
                 port: Optional[int] = None,
                 db_path: Optional[str] = None,
                 data_dir: Optional[str] = None,
                 blocks_provider=None,
                 throttle: float = 0.0) -> None:
        import os
        config = config if config is not None else CampaignConfig()
        self.config = config
        self.data_dir = data_dir or config.service_data_dir \
            or DEFAULT_DATA_DIR
        resolved_db = db_path or config.service_db \
            or os.path.join(self.data_dir, "verdicts.sqlite")
        self.db = VerdictDatabase(resolved_db)
        self.queue = CampaignQueue(self.db, self.data_dir,
                                   blocks_provider=blocks_provider,
                                   throttle=throttle)
        self.started_at = time.time()
        bind_host = host or config.service_host or DEFAULT_HOST
        bind_port = port if port is not None else (
            config.service_port if config.service_port is not None
            else DEFAULT_PORT)
        self._server = ThreadingHTTPServer((bind_host, bind_port),
                                           _Handler)
        self._server.daemon_threads = True
        self._server.service = self  # the handler's way back in
        self._thread: Optional[threading.Thread] = None
        self._serving = False

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` — port resolved even when the
        config asked for an ephemeral one (``port = 0``)."""
        return self._server.server_address[:2]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> "ServiceDaemon":
        """Serve in a background thread (the embeddable form)."""
        self._serving = True
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name="service-daemon", daemon=True,
        )
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread (``python -m repro serve``)."""
        self._serving = True
        self._server.serve_forever()

    def close(self) -> None:
        if self._serving:
            # shutdown() handshakes with a serve loop and would block
            # forever if none ever ran (a constructed-but-never-served
            # daemon still owns its socket, queue, and database)
            self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
        self.queue.close()
        self.db.close()


class _Handler(BaseHTTPRequestHandler):
    """Route table over the daemon's queue and database.  One handler
    thread per connection (ThreadingHTTPServer), so a ``?watch=1``
    stream blocking on a running campaign never starves the other
    endpoints."""

    # HTTP/1.0: the response body is delimited by connection close,
    # which is what lets the watch stream write lines as they happen
    # without chunked-encoding bookkeeping
    protocol_version = "HTTP/1.0"

    @property
    def daemon(self) -> ServiceDaemon:
        return self.server.service

    def log_message(self, format, *args):  # noqa: A002 - stdlib name
        pass  # the daemon's stdout is not an access log

    # -- helpers -------------------------------------------------------
    def _send_json(self, status: int, payload: dict) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _error(self, status: int, message: str) -> None:
        self._send_json(status, {"error": message})

    # -- POST ----------------------------------------------------------
    def do_POST(self) -> None:  # noqa: N802 - stdlib casing
        parsed = urlparse(self.path)
        if parsed.path != "/v1/campaigns":
            self._error(404, f"no such endpoint: POST {parsed.path}")
            return
        try:
            length = int(self.headers.get("Content-Length") or 0)
            body = json.loads(self.rfile.read(length) or b"{}")
            if not isinstance(body, dict):
                raise ValueError("request body must be a JSON object")
        except ValueError as exc:
            self._error(400, f"invalid JSON body: {exc}")
            return
        try:
            if "config_toml" in body:
                config = CampaignConfig.from_toml(body["config_toml"])
            elif "config" in body:
                config = CampaignConfig.from_dict(body["config"])
            else:
                raise ConfigError(
                    "body needs a 'config' table or 'config_toml' text"
                )
        except ConfigError as exc:
            self._error(400, str(exc))
            return
        tenant = body.get("tenant") \
            or self.headers.get("X-Tenant") or "default"
        if not isinstance(tenant, str) or not tenant:
            self._error(400, "tenant must be a non-empty string")
            return
        try:
            run, deduped = self.daemon.queue.submit(config, tenant)
        except RuntimeError as exc:  # queue shut down
            self._error(503, str(exc))
            return
        self._send_json(202, {
            "id": run.id,
            "deduped": deduped,
            "state": run.state,
            "config_digest": run.config_digest,
        })

    # -- GET -----------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - stdlib casing
        parsed = urlparse(self.path)
        query = parse_qs(parsed.query)
        parts = [part for part in parsed.path.split("/") if part]
        if parsed.path == "/healthz":
            self._send_json(200, {
                "status": "ok",
                "version": __version__,
                "uptime_seconds": time.time() - self.daemon.started_at,
                "verdicts": len(self.daemon.db),
            })
        elif parsed.path == "/metrics":
            self._send_json(200, {
                "stats_schema": STATS_SCHEMA,
                "version": __version__,
                "uptime_seconds": time.time() - self.daemon.started_at,
                "queue": self.daemon.queue.metrics(),
                "verdict_db": self.daemon.db.stats(),
            })
        elif parts[:2] == ["v1", "campaigns"] and len(parts) == 3:
            self._campaign_status(parts[2], query)
        elif parts[:2] == ["v1", "verdicts"] and len(parts) == 3:
            verdict = self.daemon.db.get(parts[2])
            if verdict is None:
                self._error(404, f"unknown fingerprint {parts[2]!r}")
            else:
                self._send_json(200, verdict)
        else:
            self._error(404, f"no such endpoint: GET {parsed.path}")

    def _campaign_status(self, run_id: str, query: dict) -> None:
        run = self.daemon.queue.get(run_id)
        if run is None:
            self._error(404, f"unknown campaign {run_id!r}")
            return
        if query.get("watch", ["0"])[0] not in ("0", ""):
            self._watch(run)
            return
        wait = query.get("wait")
        if wait:
            try:
                timeout = float(wait[0])
            except ValueError:
                self._error(400, f"wait must be seconds, got {wait[0]!r}")
                return
            run.finished.wait(timeout=timeout)
        self._send_json(200, run.snapshot())

    def _watch(self, run) -> None:
        """Stream the run as NDJSON: every progress event as it lands,
        then the final status snapshot."""
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.end_headers()

        def emit(payload: dict) -> None:
            self.wfile.write(
                json.dumps(payload, sort_keys=True).encode("utf-8")
                + b"\n")
            self.wfile.flush()

        sent = 0
        try:
            while True:
                with run.changed:
                    while sent >= len(run.events) \
                            and run.state not in (DONE, ERROR):
                        run.changed.wait(timeout=1.0)
                    fresh = run.events[sent:]
                    state = run.state
                for line in fresh:
                    emit({"event": line})
                sent += len(fresh)
                if state in (DONE, ERROR) and sent >= len(run.events):
                    emit({"status": run.snapshot()})
                    return
        except (ConnectionError, BrokenPipeError):
            return  # subscriber hung up mid-stream — their loss alone
