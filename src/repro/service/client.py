"""The bridge client — how anything outside the daemon's process talks
to it.

:class:`ServiceClient` wraps the JSON API in plain methods over
stdlib ``urllib``; it is what ``python -m repro submit`` uses, what the
CI smoke job drives, and the reference for writing clients in other
languages (the wire format is just JSON over HTTP — see
``docs/service.md``).  HTTP-level failures surface as
:class:`ServiceError` carrying the status code and the server's
``error`` message.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request
from typing import Dict, Iterator, Optional

from ..orchestrate.config import CampaignConfig


class ServiceError(RuntimeError):
    """An API call the server refused (4xx/5xx) or could not reach."""

    def __init__(self, message: str, status: Optional[int] = None) -> None:
        super().__init__(message)
        self.status = status


class ServiceClient:
    """A connection to one service daemon, e.g.
    ``ServiceClient("http://127.0.0.1:8357")``."""

    def __init__(self, url: str, timeout: float = 60.0) -> None:
        self.url = url.rstrip("/")
        self.timeout = timeout

    # -- transport -----------------------------------------------------
    def _request(self, method: str, path: str,
                 payload: Optional[dict] = None,
                 timeout: Optional[float] = None) -> dict:
        data = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            data = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            self.url + path, data=data, headers=headers, method=method
        )
        try:
            with urllib.request.urlopen(
                    request,
                    timeout=self.timeout if timeout is None
                    else timeout) as response:
                return json.loads(response.read())
        except urllib.error.HTTPError as exc:
            try:
                message = json.loads(exc.read()).get("error", str(exc))
            except ValueError:
                message = str(exc)
            raise ServiceError(message, status=exc.code) from None
        except urllib.error.URLError as exc:
            raise ServiceError(
                f"cannot reach service at {self.url}: {exc.reason}"
            ) from None

    # -- API -----------------------------------------------------------
    def submit(self, config: CampaignConfig,
               tenant: str = "default") -> dict:
        """``POST /v1/campaigns`` — returns the 202 payload
        (``id``, ``deduped``, ``state``, ``config_digest``)."""
        return self._request("POST", "/v1/campaigns", {
            "config": config.to_dict(), "tenant": tenant,
        })

    def status(self, campaign_id: str,
               wait: Optional[float] = None) -> dict:
        """``GET /v1/campaigns/<id>`` — the status snapshot;
        ``wait`` long-polls that many seconds for completion."""
        path = f"/v1/campaigns/{campaign_id}"
        timeout = None
        if wait is not None:
            path += f"?wait={wait}"
            timeout = wait + self.timeout
        return self._request("GET", path, timeout=timeout)

    def wait(self, campaign_id: str, timeout: float = 600.0,
             poll: float = 30.0) -> dict:
        """Long-poll until the campaign settles (``done``/``error``)
        or ``timeout`` elapses; returns the final snapshot."""
        import time
        deadline = time.monotonic() + timeout
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise ServiceError(
                    f"campaign {campaign_id} still "
                    f"running after {timeout:.0f}s")
            snapshot = self.status(campaign_id,
                                   wait=min(poll, remaining))
            if snapshot["state"] in ("done", "error"):
                return snapshot

    def watch(self, campaign_id: str) -> Iterator[dict]:
        """``GET /v1/campaigns/<id>?watch=1`` — yield the NDJSON
        stream: ``{"event": ...}`` lines, then one ``{"status": ...}``."""
        request = urllib.request.Request(
            f"{self.url}/v1/campaigns/{campaign_id}?watch=1",
            headers={"Accept": "application/x-ndjson"},
        )
        try:
            with urllib.request.urlopen(request) as response:
                for line in response:
                    line = line.strip()
                    if line:
                        yield json.loads(line)
        except urllib.error.HTTPError as exc:
            raise ServiceError(str(exc), status=exc.code) from None
        except urllib.error.URLError as exc:
            raise ServiceError(
                f"cannot reach service at {self.url}: {exc.reason}"
            ) from None

    def verdict(self, fingerprint: str) -> dict:
        """``GET /v1/verdicts/<fingerprint>`` — raw provenance row."""
        return self._request("GET", f"/v1/verdicts/{fingerprint}")

    def healthz(self) -> dict:
        return self._request("GET", "/healthz")

    def metrics(self) -> Dict[str, object]:
        return self._request("GET", "/metrics")
