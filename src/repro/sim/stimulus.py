"""Stimulus generation for simulation campaigns.

The paper's baseline is conventional random/directed logic simulation.
For data-integrity validation the testbench must drive *legal* traffic:
parity-protected input groups carry correct odd parity, and the
error-injection ports are held at zero (they are tied off in silicon).
:class:`IntegrityStimulus` encodes exactly that.
"""

from __future__ import annotations

import random
from typing import Dict, Iterator, List, Mapping, Optional, Sequence

from ..rtl.elaborate import FlatDesign
from ..rtl.integrity import IntegritySpec
from ..rtl.module import Module
from ..rtl.parity import encode_value
from ..rtl.signals import mask


class IntegrityStimulus:
    """Random stimulus respecting a module's integrity specification.

    - inputs listed in ``spec.protected_inputs`` receive random data
      encoded with correct odd parity;
    - the EC/ED injection ports are driven to zero;
    - all other inputs receive uniform random values;
    - ``pinned`` entries override any of the above (directed tests).
    """

    def __init__(self, module: Module, spec: Optional[IntegritySpec] = None,
                 seed: int = 2004,
                 pinned: Optional[Mapping[str, int]] = None) -> None:
        self.module = module
        self.spec = spec if spec is not None else module.integrity
        if self.spec is None:
            raise ValueError(f"module {module.name!r} has no integrity spec")
        self.rng = random.Random(seed)
        self.pinned = dict(pinned or {})
        self._protected = {g.signal for g in self.spec.protected_inputs
                           if g.lsb == 0 and g.width is None}
        self._group_layout = self._layout_groups()

    def _layout_groups(self) -> Dict[str, List]:
        by_port: Dict[str, List] = {}
        for group in self.spec.protected_inputs:
            by_port.setdefault(group.signal, []).append(group)
        return by_port

    # ------------------------------------------------------------------
    def vector(self) -> Dict[str, int]:
        """Generate one legal input vector."""
        values: Dict[str, int] = {}
        for name, port in self.module.inputs.items():
            if name in self.pinned:
                values[name] = self.pinned[name]
            elif name in (self.spec.ec_port, self.spec.ed_port):
                values[name] = 0
            elif name in self._group_layout:
                values[name] = self._protected_value(name, port.width)
            else:
                values[name] = self.rng.randrange(1 << port.width)
        return values

    def _protected_value(self, name: str, port_width: int) -> int:
        """Fill a port carrying one or more odd-parity groups; bits not
        covered by a group stay random."""
        groups = self._group_layout[name]
        value = self.rng.randrange(1 << port_width)
        for group in groups:
            width = group.width if group.width is not None else port_width
            data_width = width - 1
            data = self.rng.randrange(1 << data_width) if data_width else 0
            encoded = encode_value(data, data_width)
            value &= ~(mask(width) << group.lsb)
            value |= encoded << group.lsb
        return value & mask(port_width)

    def vectors(self, count: int) -> Iterator[Dict[str, int]]:
        for _ in range(count):
            yield self.vector()


class DirectedSequence:
    """A hand-written stimulus sequence for directed tests."""

    def __init__(self, vectors: Sequence[Mapping[str, int]]) -> None:
        self._vectors = [dict(v) for v in vectors]

    def __iter__(self) -> Iterator[Dict[str, int]]:
        return iter(self._vectors)

    def __len__(self) -> int:
        return len(self._vectors)
