"""Cycle-accurate two-valued logic simulator.

Simulates a :class:`~repro.rtl.elaborate.FlatDesign` at the word level:
each cycle, primary-input values are applied, every output and register
next-state function is evaluated with a shared memo, and then all
registers update simultaneously (synchronous semantics).

This simulator is the substrate for the paper's *baseline*: conventional
logic-simulation validation, against which the formal methodology is
compared in Table 3.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional

from ..rtl.elaborate import FlatDesign
from ..rtl.signals import Expr, Reg, evaluate, mask


class SimulationError(RuntimeError):
    """Raised for stimulus/driver errors during simulation."""


class Simulator:
    """Simulates one flat design.

    Usage::

        sim = Simulator(design)
        sim.reset()
        outs = sim.step({"I": 0x1ff})
        value = sim.peek("cs")
    """

    def __init__(self, design: FlatDesign) -> None:
        self.design = design
        self.state: Dict[Reg, int] = {}
        self.cycle = 0
        self._last_outputs: Dict[str, int] = {}
        self.reset()

    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Apply synchronous reset: all registers to their reset values."""
        self.state = {reg: reg.reset for reg in self.design.regs}
        self.cycle = 0
        self._last_outputs = {}

    def step(self, inputs: Optional[Mapping[str, int]] = None) -> Dict[str, int]:
        """Advance one clock cycle.

        ``inputs`` maps input port names to values; unspecified ports
        default to zero.  Returns the output values observed *during*
        this cycle (before the register update).
        """
        env: Dict[Expr, int] = {}
        given = dict(inputs or {})
        for name, port in self.design.inputs.items():
            value = given.pop(name, 0)
            if value < 0 or value > mask(port.width):
                raise SimulationError(
                    f"input {name!r}: value {value:#x} does not fit in "
                    f"{port.width} bits"
                )
            env[port] = value
        if given:
            raise SimulationError(f"unknown input port(s): {sorted(given)}")
        env.update(self.state)

        memo: Dict[int, int] = {}
        outputs = {
            name: evaluate(expr, env, memo)
            for name, expr in self.design.outputs.items()
        }
        next_state = {
            reg: evaluate(reg.next, env, memo) for reg in self.design.regs
        }
        self.state = next_state
        self.cycle += 1
        self._last_outputs = outputs
        return outputs

    # ------------------------------------------------------------------
    def peek(self, name: str) -> int:
        """Current value of a register (by flat name) or the output value
        from the most recent :meth:`step`."""
        for reg, value in self.state.items():
            if reg.name == name:
                return value
        if name in self._last_outputs:
            return self._last_outputs[name]
        raise KeyError(f"no register or sampled output named {name!r}")

    def poke(self, name: str, value: int) -> None:
        """Force a register to a value (deposits between cycles; used by
        fault-injection experiments)."""
        for reg in self.state:
            if reg.name == name:
                if value < 0 or value > mask(reg.width):
                    raise SimulationError(
                        f"poke {name!r}: {value:#x} does not fit in "
                        f"{reg.width} bits"
                    )
                self.state[reg] = value
                return
        raise KeyError(f"no register named {name!r}")

    def run(self, stimulus: Iterable[Mapping[str, int]]) -> List[Dict[str, int]]:
        """Run a stimulus sequence; returns the per-cycle output records."""
        return [self.step(vector) for vector in stimulus]

    def state_by_name(self) -> Dict[str, int]:
        """Snapshot of all register values keyed by flat register name."""
        return {reg.name: value for reg, value in self.state.items()}
