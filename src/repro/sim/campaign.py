"""Simulation bug-hunt campaign — the paper's baseline methodology.

Runs a budgeted random-simulation campaign over a set of leaf modules,
watching the dynamic counterparts of the P1/P2 integrity checks, and
reports which modules showed violations.  Comparing this campaign's
findings against the formal campaign reproduces Table 3: bugs whose
triggering scenario is a narrow corner (reserved-field writes, 2-of-91
decoder cases with data-dependent parity) stay hidden from random
simulation, and bugs masked by a wrong behavioural model of a hard
macro are *impossible* for simulation to see.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..rtl.elaborate import elaborate
from ..rtl.module import Module
from .stimulus import IntegrityStimulus
from .testbench import Testbench, Violation


@dataclass
class SimModuleResult:
    """Outcome of simulating one leaf module."""

    module_name: str
    cycles_run: int
    violations: List[Violation] = field(default_factory=list)
    seconds: float = 0.0
    #: the input vectors actually applied, in order (populated only
    #: when the campaign runs with ``record_stimulus=True``) — the raw
    #: material for replaying a violation through the formal trace
    #: machinery (:func:`repro.scenario.triage.replay_violation`)
    stimulus: List[Dict[str, int]] = field(default_factory=list)

    @property
    def found_bug(self) -> bool:
        return bool(self.violations)

    @property
    def first_violation_cycle(self) -> Optional[int]:
        return self.violations[0].cycle if self.violations else None


@dataclass
class SimCampaignReport:
    """Aggregate of a simulation campaign."""

    results: List[SimModuleResult] = field(default_factory=list)

    def modules_with_violations(self) -> List[str]:
        return [r.module_name for r in self.results if r.found_bug]

    def result_for(self, module_name: str) -> SimModuleResult:
        for result in self.results:
            if result.module_name == module_name:
                return result
        raise KeyError(f"no simulation result for module {module_name!r}")

    @property
    def total_cycles(self) -> int:
        return sum(r.cycles_run for r in self.results)


class SimulationCampaign:
    """Random-simulation campaign over leaf modules.

    ``cycles_per_module`` is the simulation budget: the paper's point is
    that a *realistic* budget leaves narrow-corner integrity bugs
    unfound, while formal verification needs no scenario at all.

    ``sim_view`` selects the module variant simulated: simulation runs
    against the design *as the testbench sees it*, which includes
    behavioural models of hard macros.  Modules may provide such a view
    in ``module.attrs['sim_view']`` (used to reproduce bug B3, where the
    macro's behavioural model was wrong and masked the bug).

    ``record_stimulus`` keeps the applied input vectors on each
    module's result — required when a violation is to be replayed as a
    formal counterexample (sim-then-formal triage).
    """

    def __init__(self, modules: List[Module], cycles_per_module: int = 2000,
                 seed: int = 2004, stop_on_violation: bool = True,
                 record_stimulus: bool = False) -> None:
        self.modules = modules
        self.cycles_per_module = cycles_per_module
        self.seed = seed
        self.stop_on_violation = stop_on_violation
        self.record_stimulus = record_stimulus

    def run(self) -> SimCampaignReport:
        report = SimCampaignReport()
        for index, module in enumerate(self.modules):
            report.results.append(self._run_module(module, index))
        return report

    def _run_module(self, module: Module, index: int) -> SimModuleResult:
        sim_module = module.attrs.get("sim_view", module)
        spec = sim_module.integrity
        started = time.perf_counter()
        design = elaborate(sim_module)
        bench = Testbench.for_module(sim_module, design, spec)
        stimulus = IntegrityStimulus(
            sim_module, spec, seed=self.seed + index * 7919
        )
        if self.record_stimulus:
            vectors = [stimulus.vector()
                       for _ in range(self.cycles_per_module)]
            bench.run(vectors, stop_on_violation=self.stop_on_violation)
            applied = vectors[:bench.simulator.cycle]
        else:
            bench.run(stimulus.vectors(self.cycles_per_module),
                      stop_on_violation=self.stop_on_violation)
            applied = []
        elapsed = time.perf_counter() - started
        return SimModuleResult(
            module_name=module.name,
            cycles_run=bench.simulator.cycle,
            violations=list(bench.violations),
            seconds=elapsed,
            stimulus=applied,
        )
