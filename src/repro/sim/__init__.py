"""Logic-simulation substrate: simulator, stimulus, testbenches,
coverage, and the simulation bug-hunt campaign (the paper's baseline)."""

from .simulator import SimulationError, Simulator
from .stimulus import DirectedSequence, IntegrityStimulus
from .testbench import (
    HeMonitor, Monitor, OutputParityMonitor, Testbench, Violation,
)
from .coverage import CheckpointCoverage, ToggleCoverage, ToggleStats
from .campaign import SimCampaignReport, SimModuleResult, SimulationCampaign

__all__ = [
    "SimulationError", "Simulator",
    "DirectedSequence", "IntegrityStimulus",
    "HeMonitor", "Monitor", "OutputParityMonitor", "Testbench", "Violation",
    "CheckpointCoverage", "ToggleCoverage", "ToggleStats",
    "SimCampaignReport", "SimModuleResult", "SimulationCampaign",
]
