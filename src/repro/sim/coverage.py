"""Coverage collection for simulation campaigns.

Two classic measures motivate the paper's move to formal methods:

- **checkpoint coverage** — how many of the design's integrity
  checkpoints were ever *exercised* (their guarding condition observed)
  during simulation; the chip had >1300 checkpoints, far too many to
  cover exhaustively by simulation;
- **toggle coverage** — per-bit 0->1 / 1->0 activity, the coarse
  structural measure showing how little of the value space random
  simulation visits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Tuple

from ..rtl.signals import mask


@dataclass
class ToggleStats:
    """Per-signal toggle counters."""

    rose: int = 0
    fell: int = 0

    @property
    def toggled(self) -> bool:
        return self.rose > 0 and self.fell > 0


class ToggleCoverage:
    """Tracks per-bit toggle activity across cycles."""

    def __init__(self) -> None:
        self._last: Dict[Tuple[str, int], int] = {}
        self._stats: Dict[Tuple[str, int], ToggleStats] = {}

    def sample(self, values: Mapping[str, int],
               widths: Mapping[str, int]) -> None:
        for name, value in values.items():
            width = widths.get(name, 1)
            for bit in range(width):
                key = (name, bit)
                current = (value >> bit) & 1
                previous = self._last.get(key)
                if previous is not None and previous != current:
                    stats = self._stats.setdefault(key, ToggleStats())
                    if current:
                        stats.rose += 1
                    else:
                        stats.fell += 1
                self._last[key] = current

    def ratio(self) -> float:
        """Fraction of observed bits that fully toggled (both edges)."""
        if not self._last:
            return 0.0
        toggled = sum(
            1 for key in self._last
            if self._stats.get(key, ToggleStats()).toggled
        )
        return toggled / len(self._last)


class CheckpointCoverage:
    """Tracks which integrity checkpoints were exercised.

    A checkpoint counts as *exercised* when simulation ever observed the
    value category the check guards against being possible — here
    approximated by the checkpoint's word changing value at least once
    (data actually flowed through the check).
    """

    def __init__(self, checkpoints: Iterable[str]) -> None:
        self._seen_values: Dict[str, set] = {name: set() for name in checkpoints}

    def sample(self, values: Mapping[str, int]) -> None:
        for name, seen in self._seen_values.items():
            if name in values:
                seen.add(values[name])

    def exercised(self, minimum_values: int = 2) -> Dict[str, bool]:
        return {
            name: len(seen) >= minimum_values
            for name, seen in self._seen_values.items()
        }

    def ratio(self, minimum_values: int = 2) -> float:
        if not self._seen_values:
            return 0.0
        flags = self.exercised(minimum_values)
        return sum(flags.values()) / len(flags)
