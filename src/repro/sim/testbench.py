"""Testbench with pluggable integrity monitors.

Monitors watch per-cycle observations (inputs applied, outputs sampled,
register state) and record violations.  The two stock monitors implement
the dynamic counterparts of the paper's P1 and P2 stereotype checks:

- :class:`HeMonitor` — the hardware-error report must stay silent during
  legal traffic (soundness of internal states);
- :class:`OutputParityMonitor` — every protected output group must carry
  odd parity during legal traffic (output data integrity).

A bug is "found by logic simulation" when a monitor fires within the
simulation budget — the criterion behind Table 3.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional

from ..rtl.elaborate import FlatDesign
from ..rtl.integrity import IntegritySpec, ParityGroup
from ..rtl.module import Module
from ..rtl.parity import value_ok
from ..rtl.signals import mask
from .simulator import Simulator


@dataclass
class Violation:
    """One recorded monitor violation."""

    cycle: int
    monitor: str
    message: str


class Monitor:
    """Base class for per-cycle checkers."""

    name = "monitor"

    def observe(self, cycle: int, inputs: Mapping[str, int],
                outputs: Mapping[str, int],
                state: Mapping[str, int]) -> Optional[str]:
        """Return a violation message, or None when the cycle is clean."""
        raise NotImplementedError


class HeMonitor(Monitor):
    """Fires when any hardware-error report bit asserts."""

    def __init__(self, he_signals: Iterable[str]) -> None:
        self.he_signals = list(he_signals)
        self.name = "HE"

    def observe(self, cycle, inputs, outputs, state):
        for signal in self.he_signals:
            if outputs.get(signal, 0):
                return f"hardware error reported on {signal}"
        return None


class OutputParityMonitor(Monitor):
    """Fires when a protected output group carries bad (even) parity."""

    def __init__(self, groups: Iterable[ParityGroup],
                 output_widths: Mapping[str, int]) -> None:
        self.groups = list(groups)
        self.widths = dict(output_widths)
        self.name = "OutputParity"

    def observe(self, cycle, inputs, outputs, state):
        for group in self.groups:
            value = outputs.get(group.signal)
            if value is None:
                continue
            width = group.width
            if width is None:
                width = self.widths[group.signal]
            word = (value >> group.lsb) & mask(width)
            if not value_ok(word):
                return f"parity violation on {group.describe()}"
        return None


class Testbench:
    """Drives a simulator with a stimulus stream under monitors."""

    __test__ = False    # not a pytest collection target

    def __init__(self, design: FlatDesign, monitors: Iterable[Monitor]) -> None:
        self.simulator = Simulator(design)
        self.monitors = list(monitors)
        self.violations: List[Violation] = []

    @classmethod
    def for_module(cls, module: Module, design: FlatDesign,
                   spec: Optional[IntegritySpec] = None) -> "Testbench":
        """Standard integrity testbench: HE + output-parity monitors
        derived from the module's integrity spec."""
        spec = spec if spec is not None else module.integrity
        if spec is None:
            raise ValueError(f"module {module.name!r} has no integrity spec")
        widths = {name: expr.width for name, expr in module.outputs.items()}
        monitors: List[Monitor] = []
        if spec.he_signals:
            monitors.append(HeMonitor(spec.he_signals))
        if spec.protected_outputs:
            monitors.append(OutputParityMonitor(spec.protected_outputs, widths))
        return cls(design, monitors)

    # ------------------------------------------------------------------
    def run(self, stimulus: Iterable[Mapping[str, int]],
            stop_on_violation: bool = False) -> List[Violation]:
        """Run the stimulus; returns the violations observed."""
        sim = self.simulator
        for vector in stimulus:
            outputs = sim.step(vector)
            state = sim.state_by_name()
            for monitor in self.monitors:
                message = monitor.observe(sim.cycle, vector, outputs, state)
                if message is not None:
                    self.violations.append(
                        Violation(sim.cycle, monitor.name, message)
                    )
                    if stop_on_violation:
                        return self.violations
        return self.violations

    @property
    def clean(self) -> bool:
        return not self.violations
