"""Figures 2-4 — the stereotype PSL vunits.

Generates the three stereotype vunits for the canonical Figure 1 leaf
module, checks their structure against the paper's PSL (Figures 2, 3
and 4), and round-trips the emitted text through the parser.
"""

from repro.chip.library import canonical_leaf
from repro.core.stereotypes import (
    edetect_vunit, integrity_vunit, soundness_vunit,
)
from repro.psl.parser import parse_vunit
from repro.rtl.inject import make_verifiable



def generate():
    module = make_verifiable(canonical_leaf())
    return module, [
        edetect_vunit(module),     # Figure 2
        soundness_vunit(module),   # Figure 3
        integrity_vunit(module),   # Figure 4
    ]


def test_figures_2_to_4_psl(benchmark, publish):
    module, units = benchmark.pedantic(generate, rounds=1, iterations=1)
    edetect, soundness, integrity = units

    # Figure 2: assertions only, implication with next, parity on ED/I
    text2 = edetect.emit()
    assert "assume" not in text2
    assert text2.count("-> next") == 3
    assert "^I_ERR_INJ_D" in text2 or "^(I_ERR_INJ_D" in text2

    # Figure 3: two assumptions (input integrity, no injection), one
    # never-assertion per HE report
    text3 = soundness.emit()
    assert text3.count("assume") == 2
    assert "never ( HE )" in text3
    assert "~I_ERR_INJ_C" in text3

    # Figure 4: same environment, always(^O) assertion
    text4 = integrity.emit()
    assert "always ( ^O )" in text4
    assert text4.count("assume") == 2

    # all three round-trip through the parser unchanged
    for unit in units:
        reparsed = parse_vunit(unit.emit())
        assert reparsed.directives == unit.directives
        for decl in unit.declarations:
            assert reparsed.property_named(decl.name) == decl.prop

    publish("fig2_4_psl", "\n\n".join(
        f"-- Figure {index + 2} analogue --\n{unit.emit()}"
        for index, unit in enumerate(units)
    ))
    benchmark.extra_info["assertions"] = sum(
        len(u.asserted()) for u in units
    )
