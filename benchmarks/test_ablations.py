"""Ablations of the design choices called out in DESIGN.md §5.

1. Engine comparison: the same property checked by every engine —
   monitor-based compilation makes properties engine-agnostic.
2. Partitioned transition relation with early quantification vs a
   clustered/monolithic relation (BDD node cost of image computation).
3. POBDD window count vs peak per-window reached-set size.
4. k-induction with and without simple-path (unique-states)
   constraints.
"""

import pytest

from repro.chip.library import canonical_leaf, fig7_module
from repro.core.report import render_table
from repro.core.stereotypes import integrity_vunit, soundness_vunit
from repro.formal.budget import ResourceBudget
from repro.formal.engine import PASS, ModelChecker
from repro.formal.induction import k_induction
from repro.formal.pobdd import pobdd_reach
from repro.formal.reachability import SymbolicModel, forward_reach
from repro.psl.compile import compile_assertion
from repro.rtl.inject import make_verifiable



def _soundness_problem():
    module = make_verifiable(fig7_module(data_width=8, depth=3))
    unit = soundness_vunit(module)
    return compile_assertion(module, unit, unit.asserted()[0][0])


def test_ablation_engines(benchmark, publish):
    """Every engine settles the same stereotype property."""
    module = make_verifiable(canonical_leaf())
    unit = soundness_vunit(module)
    ts = compile_assertion(module, unit, "pNoError_HE")

    def run_all():
        rows = []
        for method in ("bmc", "kind", "bdd-forward", "bdd-backward",
                       "bdd-combined", "pobdd"):
            budget = ResourceBudget(sat_conflicts=500_000,
                                    bdd_nodes=5_000_000)
            result = ModelChecker(ts, budget).check(method=method)
            rows.append([method, result.status.upper(),
                         result.depth,
                         budget.spent_conflicts, budget.spent_nodes,
                         f"{result.seconds * 1000:.1f} ms"])
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    verdicts = {row[1] for row in rows}
    assert verdicts == {"PASS", "UNKNOWN"}   # bmc alone is bounded
    assert [row[1] for row in rows if row[0] != "bmc"] == ["PASS"] * 5
    publish("ablation_engines", render_table(
        ["Engine", "Verdict", "Depth/k", "SAT conflicts", "BDD nodes",
         "Time"], rows,
    ))


def test_ablation_transition_clustering(benchmark, publish):
    """Fully partitioned relation (limit 1) vs increasingly clustered
    relations: early quantification needs the partitions."""
    module = make_verifiable(canonical_leaf())
    unit = soundness_vunit(module)
    ts = compile_assertion(module, unit, "pNoError_HE")

    def run():
        rows = []
        for limit in (1, 4, 16, 10_000):
            budget = ResourceBudget()
            model = SymbolicModel(ts, budget=budget, cluster_limit=limit)
            reach = forward_reach(model)
            rows.append([limit, len(model.partitions),
                         reach.proved, budget.spent_nodes])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    assert all(row[2] for row in rows)     # every variant proves it
    fully_partitioned = rows[0][3]
    monolithic = rows[-1][3]
    assert fully_partitioned < monolithic  # partitioning pays off
    publish("ablation_clustering", render_table(
        ["Cluster limit", "Partitions", "Proved", "BDD nodes created"],
        rows,
    ))


def test_ablation_pobdd_windows(benchmark, publish):
    """More window variables -> smaller peak per-window reached sets.

    Uses the canonical leaf: partitioned traversal multiplies the
    number of image computations by the window count, so the ablation
    sweep stays affordable on a small state space.
    """
    module = make_verifiable(canonical_leaf())
    unit = soundness_vunit(module)
    ts = compile_assertion(module, unit, "pNoError_HE")

    def run():
        rows = []
        for window_vars in (0, 1, 2, 3):
            budget = ResourceBudget()
            model = SymbolicModel(ts, budget=budget)
            reach, stats = pobdd_reach(model,
                                       num_window_vars=window_vars)
            rows.append([window_vars, stats.windows, reach.proved,
                         stats.peak_window_size, budget.spent_nodes])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    assert all(row[2] for row in rows)
    # peak window size shrinks monotonically with more windows
    peaks = [row[3] for row in rows]
    assert peaks[0] >= peaks[-1]
    publish("ablation_pobdd", render_table(
        ["Window vars", "Windows", "Proved", "Peak window nodes",
         "Manager nodes"], rows,
    ))


def test_ablation_unique_states(benchmark, publish):
    """Simple-path constraints: completeness insurance whose cost shows
    in added clauses, not verdicts, on inductive properties."""
    ts = _soundness_problem()

    def run():
        rows = []
        for unique in (True, False):
            budget = ResourceBudget(sat_conflicts=500_000)
            result = k_induction(ts, max_k=20, budget=budget,
                                 unique_states=unique)
            rows.append([unique, result.status, result.k,
                         result.stats["conflicts"]])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    assert all(row[1] == "proved" for row in rows)
    assert rows[0][2] == rows[1][2]   # same induction depth here
    publish("ablation_unique_states", render_table(
        ["Unique states", "Status", "k", "Conflicts"], rows,
    ))
