"""Table 3 — classification of logic bugs: formal vs logic simulation.

Seeds all seven defects, runs (a) the formal campaign over the
defective modules and (b) the budgeted random-simulation campaign, and
joins the outcomes into the paper's Table 3.  The reproduction target:
formal finds all seven; simulation within its budget finds exactly the
bugs the paper marks "Yes" (B0, B2, B4) and misses the "No" bugs — B1
(complicated arming scenario), B5/B6 (data-pattern-dependent decoder
cases), and B3 (masked by the wrong macro behavioural model).
"""

from repro.chip import ComponentChip, DEFECTS
from repro.core.bugs import classify_findings
from repro.core.report import format_table3
from repro.core.stereotypes import stereotype_vunits
from repro.formal.budget import ResourceBudget
from repro.formal.engine import FAIL, ModelChecker
from repro.psl.compile import compile_assertion
from repro.sim.campaign import SimulationCampaign


SIM_CYCLES = 2000
SIM_SEED = 2004


class _FailureRecord:
    def __init__(self, qualified_name, result):
        self.qualified_name = qualified_name
        self.result = result


def run_both_campaigns():
    chip = ComponentChip.with_all_defects()
    defective = [chip.module_named(d.module_name) for d in DEFECTS]

    formal_failures = {}
    for module in defective:
        for unit in stereotype_vunits(module):
            for assert_name, _ in unit.asserted():
                ts = compile_assertion(module, unit, assert_name)
                budget = ResourceBudget(sat_conflicts=1_000_000,
                                        bdd_nodes=10_000_000)
                result = ModelChecker(ts, budget).check()
                if result.status == FAIL:
                    formal_failures.setdefault(module.name, []).append(
                        _FailureRecord(f"{unit.name}.{assert_name}",
                                       result)
                    )

    sim = SimulationCampaign(defective, cycles_per_module=SIM_CYCLES,
                             seed=SIM_SEED)
    sim_report = sim.run()
    sim_found = {
        r.module_name: r.first_violation_cycle
        for r in sim_report.results if r.found_bug
    }
    return classify_findings(DEFECTS, formal_failures, sim_found)


def test_table3_bug_classification(benchmark, publish):
    findings = benchmark.pedantic(run_both_campaigns, rounds=1,
                                  iterations=1)

    # formal verification finds every seeded bug, with a validated
    # counterexample trace
    assert all(f.found_by_formal for f in findings)

    # the simulation budget reproduces the paper's Yes/No split
    for finding in findings:
        assert finding.found_by_simulation == finding.defect.sim_easy, \
            finding.defect.defect_id
        assert finding.matches_paper

    hard = [f.defect.defect_id for f in findings
            if not f.found_by_simulation]
    assert sorted(hard) == ["B1", "B3", "B5", "B6"]

    lines = [format_table3(findings), ""]
    lines.append(f"Simulation budget: {SIM_CYCLES} legal-traffic cycles "
                 f"per module, seed {SIM_SEED}.")
    lines.append("Formal counterexample depths: " + ", ".join(
        f"{f.defect.defect_id}@{f.formal_depth}" for f in findings
    ))
    lines.append("Paper: 'at least four of seven logic bugs are "
                 "difficult to detect by logic simulation, whereas they "
                 "can be easily found by formal verification.'")
    publish("table3_bugs", "\n".join(lines))

    benchmark.extra_info["bugs_found_formal"] = 7
    benchmark.extra_info["bugs_found_sim"] = 7 - len(hard)
