"""Benchmark harness support: artifact publication."""

import pathlib

import pytest

OUT_DIR = pathlib.Path(__file__).parent / "out"


@pytest.fixture
def publish():
    """Print a report and persist it under benchmarks/out/."""

    def _publish(name: str, text: str) -> None:
        OUT_DIR.mkdir(exist_ok=True)
        (OUT_DIR / f"{name}.txt").write_text(text + "\n")
        print(f"\n===== {name} =====\n{text}\n")

    return _publish
