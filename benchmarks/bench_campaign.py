#!/usr/bin/env python
"""Campaign orchestrator smoke benchmark: serial vs parallel vs warm cache.

Runs the same chip campaign three ways —

1. serial executor, cold (the legacy baseline),
2. multiprocessing executor, cold,
3. serial executor against a warm result cache (the ECO-rerun case),

verifies all three produce byte-identical Table 2 output, and writes a
perf record to ``benchmarks/out/BENCH_campaign.json`` so future PRs
have a trajectory to beat.

Run:  python benchmarks/bench_campaign.py [--full] [--blocks A,C]
                                          [--jobs N]
"""

import argparse
import json
import os
import pathlib
import sys
import tempfile
import time

sys.path.insert(
    0, str(pathlib.Path(__file__).resolve().parent.parent / "src")
)

from repro.chip import ComponentChip                      # noqa: E402
from repro.core.campaign import FormalCampaign            # noqa: E402
from repro.core.report import format_table2               # noqa: E402
from repro.formal.budget import ResourceBudget            # noqa: E402
from repro.orchestrate import (                           # noqa: E402
    ParallelExecutor, ResultCache,
)

OUT_PATH = pathlib.Path(__file__).parent / "out" / "BENCH_campaign.json"


def _budget():
    return ResourceBudget(sat_conflicts=1_000_000, bdd_nodes=10_000_000)


def _timed_run(blocks, **kwargs):
    campaign = FormalCampaign(blocks, budget_factory=_budget, **kwargs)
    started = time.perf_counter()
    report = campaign.run()
    return report, time.perf_counter() - started


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true",
                        help="benchmark the whole 2047-property chip")
    parser.add_argument("--blocks", default="A,C",
                        help="comma-separated block subset (default A,C)")
    parser.add_argument("--jobs", type=int, default=None,
                        help="worker processes for the parallel run "
                             "(default: CPU count)")
    args = parser.parse_args()

    only = None if args.full else args.blocks.split(",")
    chip = ComponentChip(only_blocks=only)
    scope = "full chip" if args.full else f"blocks {','.join(only)}"

    print(f"campaign smoke benchmark over {scope}")

    serial_report, serial_s = _timed_run(chip.blocks)
    print(f"  serial cold:  {serial_s:7.2f}s "
          f"({serial_report.total_properties} properties)")

    parallel_report, parallel_s = _timed_run(
        chip.blocks, executor=ParallelExecutor(processes=args.jobs)
    )
    print(f"  parallel cold:{parallel_s:7.2f}s "
          f"({parallel_report.stats['executor']})")

    with tempfile.TemporaryDirectory(prefix="bench_cache_") as cache_dir:
        cache_path = os.path.join(cache_dir, "results.json")
        _timed_run(chip.blocks, cache=ResultCache(cache_path))
        warm_report, warm_s = _timed_run(chip.blocks,
                                         cache=ResultCache(cache_path))
    print(f"  warm cache:   {warm_s:7.2f}s "
          f"({warm_report.stats['cache_hits']} hits, "
          f"{warm_report.stats['cache_misses']} misses)")

    tables_identical = (
        format_table2(serial_report) == format_table2(parallel_report)
        == format_table2(warm_report)
    )
    if not tables_identical:
        print("  WARNING: executors disagreed on Table 2 output!")

    record = {
        "benchmark": "campaign_orchestrator",
        "scope": scope,
        "properties": serial_report.total_properties,
        "cpu_count": os.cpu_count(),
        "parallel_mode": parallel_report.stats["executor"],
        "seconds": {
            "serial_cold": round(serial_s, 3),
            "parallel_cold": round(parallel_s, 3),
            "warm_cache": round(warm_s, 3),
        },
        "speedup": {
            "parallel_vs_serial": round(serial_s / parallel_s, 2),
            "warm_vs_serial": round(serial_s / warm_s, 2),
        },
        "cache": {
            "hits": warm_report.stats["cache_hits"],
            "misses": warm_report.stats["cache_misses"],
        },
        "tables_identical": tables_identical,
    }
    OUT_PATH.parent.mkdir(exist_ok=True)
    OUT_PATH.write_text(json.dumps(record, indent=2) + "\n")
    print(f"  perf record -> {OUT_PATH}")
    return 0 if tables_identical else 1


if __name__ == "__main__":
    sys.exit(main())
