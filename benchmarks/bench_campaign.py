#!/usr/bin/env python
"""Campaign orchestrator smoke benchmark: executors, cache, and resume.

Runs the same chip campaign several ways —

1. serial executor, cold (the legacy baseline),
2. chunked multiprocessing pool (``ParallelExecutor``), cold,
3. work-stealing pool (``WorkStealingExecutor``), cold,
4. serial executor against a warm result cache (the ECO-rerun case),
5. checkpointed cold run, then a resume from a half-truncated journal
   (the killed-campaign case: half the jobs replay, half execute),
6. a shared-BDD-workspace probe on a fixed block-C scope with the
   ``bdd-combined`` engine (the BDD-heaviest configuration): cold
   managers vs one shared workspace, counting total BDD node
   creations via ``repro.formal.bdd.nodes_created_total``,
7. a config-driven adaptive-portfolio probe: a warm cache seeds the
   engine history, then an ECO-style rerun (changed budgets, so every
   fingerprint misses) is executed with a deliberately worst-first
   portfolio ladder twice — ``portfolio = "static"`` vs ``"adaptive"``
   — comparing wall time and engine attempts, with byte-identical
   outcomes,
8. a shared-SAT-workspace probe on one module's whole assertion set
   with the SAT-heaviest ``portfolio:bmc,kind`` ladder: cold solvers
   vs one shared incremental workspace (clustered CNFs, retained time
   frames, learned-clause retention under activation literals),
   comparing wall time and the deterministic conflict/propagation
   totals summed over every portfolio attempt,
9. a scenario-sweep probe: the fixed tiny generated chip family
   crossed with all four defect classes (``repro.scenario``), run
   under the serial and the work-stealing executor — recording the
   detection rate, the surviving-mutant list (must be empty), and
   the per-engine time-to-FAIL buckets, with outcome-identical
   canonical records across the executors,
10. a compile-store probe on the fixed block-C scope: the
   content-addressed ``CompiledProblemStore`` on vs off, measured two
   ways — serial runs diffing the process-wide
   ``elaborations_total()`` / ``compilations_total()`` counters (the
   deterministic savings), and module-affinity work-stealing runs
   comparing job throughput and the pool's aggregated store hit
   counters (the scheduled case the store was built for),
11. a fleet-transport probe on the fixed block-C scope: the local
   socket-fanout ``FleetExecutor`` vs serial — per-worker job counts
   and lease bookkeeping on the healthy run, then a faulted run that
   SIGKILLs a worker after the first result, recording the lease
   re-issues and the recovery overhead with a byte-identical outcome,

verifies every run produces a byte-identical campaign outcome
(``CampaignReport.canonical_bytes``), and writes a perf record to
``benchmarks/out/BENCH_campaign.json`` so future PRs have a trajectory
to beat.

``--smoke`` runs only the compile-store and SAT-workspace probes,
writes ``benchmarks/out/BENCH_campaign_smoke.json``, and exits nonzero
unless both earn their keep — the store with nonzero hit counters,
fewer elaborations, and throughput not below store-off; the SAT
workspace with byte-identical outcomes, live reuse counters (session
reuses, frames and learned clauses retained), and a >=5x
conflict/propagation reduction or >=2x wall speedup over cold
solvers.  The CI ``bench-smoke`` job runs exactly this, so a
compile-layer or solver-layer perf regression fails the build instead
of silently landing.  Every record carries the host topology (CPU
count, platform, Python version, pool workers).

The pool executors default to ``max(2, cpu_count)`` workers so a real
pool is exercised even on a 1-CPU container (where CPU-count defaults
would silently fall back to serial and measure nothing); pass ``--jobs``
to override.

Run:  python benchmarks/bench_campaign.py [--full] [--blocks A,C]
                                          [--jobs N] [--smoke]
"""

import argparse
import json
import os
import pathlib
import signal
import sys
import tempfile
import time

sys.path.insert(
    0, str(pathlib.Path(__file__).resolve().parent.parent / "src")
)

from repro.chip import ComponentChip                      # noqa: E402
from repro.core.campaign import FormalCampaign            # noqa: E402
from repro.formal.bdd import nodes_created_total          # noqa: E402
from repro.formal.workspace import BddWorkspace           # noqa: E402
from repro.orchestrate import (                           # noqa: E402
    CampaignCheckpoint, CampaignConfig, CampaignOrchestrator,
    EngineConfig, ParallelExecutor, ResultCache, SerialExecutor,
    WorkStealingExecutor,
)
from repro.orchestrate.stats import (                     # noqa: E402
    STATS_SCHEMA, counter_groups,
)

OUT_PATH = pathlib.Path(__file__).parent / "out" / "BENCH_campaign.json"


def _host_topology(workers=None):
    """The host facts every perf record carries, so trajectories from
    different machines are never compared apples-to-oranges."""
    import platform
    topology = {
        "cpu_count": os.cpu_count(),
        "platform": platform.platform(),
        "python": platform.python_version(),
    }
    if workers is not None:
        topology["pool_workers"] = workers
    return topology


def _timed_run(blocks, resume=False, **kwargs):
    config = CampaignConfig(sat_conflicts=1_000_000,
                            bdd_nodes=10_000_000)
    campaign = FormalCampaign(blocks, config=config, **kwargs)
    started = time.perf_counter()
    report = campaign.run(resume=resume)
    return report, time.perf_counter() - started


def _bench_workspace():
    """Shared-BDD-workspace probe: the block-C campaign forced onto the
    ``bdd-combined`` engine (every check builds a BDD universe), cold
    managers vs one shared per-module workspace.

    The scope is fixed (block C, 101 properties over 13 modules) so the
    record is comparable across runs whatever ``--blocks`` selected;
    node creations are counted process-wide, which is why this probe
    runs serially.  Campaigns now *default* to shared workspaces, so
    the cold side opts out explicitly (``share_bdd=False``) — this
    probe is the measurement behind that default.
    """
    blocks = ComponentChip(only_blocks=["C"]).blocks
    engines = (EngineConfig(method="bdd-combined",
                            sat_conflicts=1_000_000,
                            bdd_nodes=10_000_000),)

    nodes_before = nodes_created_total()
    started = time.perf_counter()
    cold = FormalCampaign(
        blocks, engines=engines,
        executor=SerialExecutor(share_bdd=False),
    ).run()
    cold_s = time.perf_counter() - started
    cold_nodes = nodes_created_total() - nodes_before

    workspace = BddWorkspace()
    nodes_before = nodes_created_total()
    started = time.perf_counter()
    shared = FormalCampaign(
        blocks, engines=engines,
        executor=SerialExecutor(workspace=workspace),
    ).run()
    shared_s = time.perf_counter() - started
    shared_nodes = nodes_created_total() - nodes_before

    identical = cold.canonical_bytes() == shared.canonical_bytes()
    saved_pct = round(100.0 * (1 - shared_nodes / cold_nodes), 1) \
        if cold_nodes else 0.0
    print(f"  bdd cold managers:  {cold_s:7.2f}s "
          f"({cold_nodes:,} nodes created)")
    print(f"  bdd shared ws:      {shared_s:7.2f}s "
          f"({shared_nodes:,} nodes created, {saved_pct}% saved, "
          f"{workspace.stats()['reuses']} manager reuses)")
    if not identical:
        print("  WARNING: shared-workspace outcome diverged from cold!")
    return {
        "scope": "block C",
        "engine": "bdd-combined",
        "properties": cold.total_properties,
        "seconds": {
            "cold": round(cold_s, 3),
            "shared": round(shared_s, 3),
        },
        "nodes_created": {
            "cold": cold_nodes,
            "shared": shared_nodes,
            "saved_pct": saved_pct,
        },
        "workspace": workspace.stats(),
        "outcomes_identical": identical,
    }


def _bench_adaptive():
    """Config-driven adaptive-portfolio probe on the fixed block-C
    scope.

    A first campaign with the good ladder (``kind`` first) warms a
    shared result cache — that is the engine history.  Then an
    ECO-style rerun (budgets nudged, so every fingerprint misses while
    module names persist) is executed with a deliberately *worst-first*
    ladder, once statically and once adaptively (each against its own
    copy of the warm cache).  The adaptive policy should recover the
    historical winner per module/category and pay fewer/cheaper engine
    attempts for the same byte-identical outcome.
    """
    import dataclasses
    import shutil

    blocks = ComponentChip(only_blocks=["C"]).blocks
    ladder = "portfolio:pobdd,bdd-combined,kind"   # worst-first
    with tempfile.TemporaryDirectory(prefix="bench_adapt_") as tmp:
        warm_path = os.path.join(tmp, "warm.json")
        warm = CampaignConfig(engines="portfolio:kind,bdd-combined,pobdd",
                              sat_conflicts=1_000_000,
                              bdd_nodes=10_000_000,
                              cache_path=warm_path)
        CampaignOrchestrator(blocks, config=warm).run()

        static_path = os.path.join(tmp, "static.json")
        adaptive_path = os.path.join(tmp, "adaptive.json")
        shutil.copy(warm_path, static_path)
        shutil.copy(warm_path, adaptive_path)
        eco = CampaignConfig(engines=ladder, sat_conflicts=900_000,
                             bdd_nodes=10_000_000)

        started = time.perf_counter()
        static = CampaignOrchestrator(
            blocks, config=dataclasses.replace(eco,
                                               cache_path=static_path),
        ).run()
        static_s = time.perf_counter() - started

        started = time.perf_counter()
        adaptive = CampaignOrchestrator(
            blocks, config=dataclasses.replace(eco,
                                               cache_path=adaptive_path,
                                               portfolio="adaptive"),
        ).run()
        adaptive_s = time.perf_counter() - started

    identical = adaptive.canonical_bytes() == static.canonical_bytes()
    print(f"  static worst-first: {static_s:7.2f}s "
          f"(attempts {static.stats['engine_attempts']})")
    print(f"  adaptive portfolio: {adaptive_s:7.2f}s "
          f"(attempts {adaptive.stats['engine_attempts']}, "
          f"{adaptive.stats['portfolio_reordered']} jobs reordered)")
    if not identical:
        print("  WARNING: adaptive-portfolio outcome diverged!")
    return {
        "scope": "block C",
        "ladder": ladder,
        "properties": static.total_properties,
        "seconds": {
            "static": round(static_s, 3),
            "adaptive": round(adaptive_s, 3),
        },
        "speedup_adaptive_vs_static": round(static_s / adaptive_s, 2)
        if adaptive_s else 0.0,
        "engine_attempts": {
            "static": static.stats["engine_attempts"],
            "adaptive": adaptive.stats["engine_attempts"],
        },
        "jobs_reordered": adaptive.stats["portfolio_reordered"],
        "outcomes_identical": identical,
    }


def _bench_compile_store(workers):
    """Compile-store probe on the fixed block-C scope.

    Two measurements, store on vs off, all byte-identical outcomes:

    - **serial / deterministic** — process-wide elaboration and
      compilation totals (``repro.formal.problems``): with the store
      on, a campaign pays one elaboration per distinct module instead
      of one per job;
    - **affinity-scheduled / throughput** — module-affinity
      work-stealing pool (one queue pull = one module's whole job
      group, exactly the case per-worker stores are built for): job
      throughput plus the pool's aggregated hit counters from
      ``report.stats["compile_store"]["run"]``.

    Returns the record plus an ``ok`` gate: nonzero hits, fewer
    elaborations, and store-on throughput not below store-off (a small
    slack absorbs scheduler noise on shared CI runners; the
    deterministic counters carry the hard guarantee).
    """
    import dataclasses

    from repro.formal.problems import (
        compilations_total, elaborations_total,
    )

    blocks = ComponentChip(only_blocks=["C"]).blocks
    base = CampaignConfig(engines="portfolio:kind,bdd-combined",
                          sat_conflicts=1_000_000,
                          bdd_nodes=10_000_000)

    def serial_run(store_on):
        config = dataclasses.replace(base, compile_store=store_on)
        elaborations = elaborations_total()
        compilations = compilations_total()
        started = time.perf_counter()
        report = CampaignOrchestrator(blocks, config=config).run()
        return report, {
            "seconds": round(time.perf_counter() - started, 3),
            "elaborations": elaborations_total() - elaborations,
            "compilations": compilations_total() - compilations,
        }

    serial_off_report, serial_off = serial_run(False)
    serial_on_report, serial_on = serial_run(True)

    def pool_run(store_on):
        config = dataclasses.replace(
            base, compile_store=store_on,
            executor=f"workstealing:{workers}",
            scheduling="module-affinity",
        )
        started = time.perf_counter()
        report = CampaignOrchestrator(blocks, config=config).run()
        seconds = time.perf_counter() - started
        return report, seconds

    pool_off_report, pool_off_s = pool_run(False)
    pool_on_report, pool_on_s = pool_run(True)
    # the counters are deterministic; the wall-clock comparison is not
    # (shared CI runners) — one retry of the timed pair absorbs a
    # transiently contended first measurement before the gate fires
    if pool_on_s > pool_off_s / 0.85:
        retry_off_report, retry_off_s = pool_run(False)
        retry_on_report, retry_on_s = pool_run(True)
        if retry_on_s / retry_off_s < pool_on_s / pool_off_s:
            pool_off_report, pool_off_s = retry_off_report, retry_off_s
            pool_on_report, pool_on_s = retry_on_report, retry_on_s

    jobs = serial_on_report.total_properties
    throughput_off = jobs / pool_off_s if pool_off_s else 0.0
    throughput_on = jobs / pool_on_s if pool_on_s else 0.0
    run_stats = pool_on_report.stats["compile_store"]["run"]
    hits = run_stats.get("design_hits", 0) + \
        run_stats.get("problem_hits", 0)
    identical = len({
        report.canonical_bytes() for report in (
            serial_off_report, serial_on_report,
            pool_off_report, pool_on_report,
        )
    }) == 1

    elaborations_saved = serial_off["elaborations"] - \
        serial_on["elaborations"]
    print(f"  compile store off:  {serial_off['seconds']:7.2f}s serial "
          f"({serial_off['elaborations']} elaborations), "
          f"{pool_off_s:.2f}s affinity pool")
    print(f"  compile store on:   {serial_on['seconds']:7.2f}s serial "
          f"({serial_on['elaborations']} elaborations, "
          f"{elaborations_saved} saved), "
          f"{pool_on_s:.2f}s affinity pool "
          f"({hits} store hits)")
    if not identical:
        print("  WARNING: compile-store outcome diverged!")
    ok = (identical and hits > 0 and elaborations_saved > 0
          and throughput_on >= 0.85 * throughput_off)
    return {
        "scope": "block C",
        "engines": base.engines,
        "properties": jobs,
        "serial": {"off": serial_off, "on": serial_on,
                   "elaborations_saved": elaborations_saved},
        "affinity_pool": {
            "workers": workers,
            "seconds": {"off": round(pool_off_s, 3),
                        "on": round(pool_on_s, 3)},
            "jobs_per_second": {"off": round(throughput_off, 2),
                                "on": round(throughput_on, 2)},
            "store": run_stats,
        },
        "store_hits": hits,
        "outcomes_identical": identical,
        "ok": ok,
    }


def _bench_sat_workspace():
    """Shared-SAT-workspace probe: one module's whole assertion set on
    the SAT-heaviest schedule — an iterative-deepening bmc ladder
    (bounds 5, 10, ..., 40) capped by a kind stage, the standard BMC
    practice the paper's shared workspace targets — cold solvers vs one
    shared incremental workspace.

    The scope is fixed (the block-C FSM controller, every stereotype
    assertion) so the record is comparable across runs.  Work is
    measured two ways: wall time, and the deterministic solver-effort
    counters — conflicts and propagations summed over *every* portfolio
    attempt (losing bmc stages included) from each result's attempt
    log.  Cold solving restarts each deepening stage from scratch, so a
    PASS property pays depths ``0..5``, then ``0..10``, ... up to
    ``0..40``; warm sessions keep time-frame clauses and the proven
    per-depth blocking units, so every depth is solved once per cluster
    and re-laddering shallow depths collapses to unit propagation.  The
    gate passes on a >=5x counter reduction or a >=2x wall speedup,
    with byte-identical campaign outcomes and live workspace counters.
    """
    modules = ComponentChip(only_blocks=["C"]).blocks[0][1]
    blocks = [("C", modules[:1])]
    limits = dict(sat_conflicts=1_000_000, bdd_nodes=10_000_000)
    engines = tuple(
        EngineConfig(method="bmc", max_bound=bound, **limits)
        for bound in range(5, 45, 5)
    ) + (EngineConfig(method="kind", max_k=30, **limits),)
    engines_spec = "bmc@5..40-step-5,kind (deepening ladder)"

    def solver_effort(report):
        conflicts = propagations = 0
        for entry in report.results:
            for attempt in entry.result.stats.get("portfolio", ()):
                conflicts += attempt.get("conflicts", 0)
                propagations += attempt.get("propagations", 0)
        return conflicts, propagations

    def run(share_sat):
        orchestrator = CampaignOrchestrator(
            blocks, engines=engines,
            executor=SerialExecutor(share_sat=share_sat))
        started = time.perf_counter()
        report = orchestrator.run()
        return report, time.perf_counter() - started

    cold_report, cold_s = run(False)
    warm_report, warm_s = run(True)

    cold_conflicts, cold_props = solver_effort(cold_report)
    warm_conflicts, warm_props = solver_effort(warm_report)
    counters = warm_report.stats["sat_workspace"]
    identical = cold_report.canonical_bytes() == \
        warm_report.canonical_bytes()
    conflict_ratio = cold_conflicts / warm_conflicts \
        if warm_conflicts else float(cold_conflicts or 1)
    prop_ratio = cold_props / warm_props \
        if warm_props else float(cold_props or 1)
    wall_ratio = cold_s / warm_s if warm_s else 0.0

    print(f"  sat cold solvers:   {cold_s:7.2f}s "
          f"({cold_conflicts:,} conflicts, "
          f"{cold_props:,} propagations)")
    print(f"  sat shared ws:      {warm_s:7.2f}s "
          f"({warm_conflicts:,} conflicts, {warm_props:,} propagations; "
          f"{counters.get('reuses', 0)} session reuses, "
          f"{counters.get('frames_reused', 0)} frames and "
          f"{counters.get('clauses_retained', 0)} learned clauses "
          f"retained)")
    print(f"  sat effort ratio:   {conflict_ratio:.1f}x conflicts, "
          f"{prop_ratio:.1f}x propagations, {wall_ratio:.1f}x wall")
    if not identical:
        print("  WARNING: shared-SAT outcome diverged from cold!")
    warmed = (counters.get("reuses", 0) > 0
              and counters.get("frames_reused", 0) > 0
              and counters.get("clauses_retained", 0) > 0)
    ok = (identical and warmed
          and (conflict_ratio >= 5.0 or prop_ratio >= 5.0
               or wall_ratio >= 2.0))
    return {
        "scope": f"module {modules[0].name}",
        "engines": engines_spec,
        "properties": cold_report.total_properties,
        "host": _host_topology(),
        "seconds": {"cold": round(cold_s, 3),
                    "shared": round(warm_s, 3)},
        "conflicts": {"cold": cold_conflicts, "shared": warm_conflicts,
                      "ratio": round(conflict_ratio, 2)},
        "propagations": {"cold": cold_props, "shared": warm_props,
                         "ratio": round(prop_ratio, 2)},
        "wall_ratio": round(wall_ratio, 2),
        "workspace": counters,
        "outcomes_identical": identical,
        "ok": ok,
    }


def _bench_scenario(workers):
    """Scenario-sweep probe: the fixed tiny generated family crossed
    with every defect class, swept once serially and once on the
    work-stealing pool.

    The scope is fixed (1 block x 2 modules, datapath width 4, all
    four defect classes — the mutation-kill matrix grid from
    ``tests/test_mutation_matrix.py``) so detection rate and
    time-to-FAIL trajectories are comparable across runs.  The two
    executors must produce identical canonical records — identical
    except for ``config_digest``, which honestly differs because the
    executor spec is itself a config field.
    """
    from repro.scenario import FamilySpec, run_sweep

    spec = FamilySpec(blocks=1, modules_per_block=2, datapath_width=4,
                      pipeline_depth=1, error_report_width=2)
    limits = dict(sat_conflicts=1_000_000, bdd_nodes=10_000_000)

    def outcome(record):
        # canonical bytes minus the executor-dependent config digest
        from repro.scenario import canonical_record_bytes
        stripped = {key: value for key, value in record.items()
                    if key != "config_digest"}
        return canonical_record_bytes(stripped)

    started = time.perf_counter()
    serial_record, _ = run_sweep(
        spec, config=CampaignConfig(executor="serial", **limits))
    serial_s = time.perf_counter() - started

    started = time.perf_counter()
    stealing_record, _ = run_sweep(
        spec, config=CampaignConfig(executor=f"workstealing:{workers}",
                                    **limits))
    stealing_s = time.perf_counter() - started

    identical = outcome(serial_record) == outcome(stealing_record)
    detection = serial_record["detection"]
    engines = serial_record["timing"]["engines"]
    print(f"  sweep serial:       {serial_s:7.2f}s "
          f"({detection['total']} mutants, "
          f"{detection['detected']} detected, "
          f"rate {detection['rate']:.3f})")
    print(f"  sweep work-steal:   {stealing_s:7.2f}s")
    for engine, bucket in sorted(engines.items()):
        print(f"    time-to-FAIL {engine}: {bucket['fails']} fails "
              f"in {bucket['seconds']:.2f}s")
    if detection["survivors"]:
        print(f"  WARNING: surviving mutants! {detection['survivors']}")
    if not identical:
        print("  WARNING: sweep records diverged across executors!")
    ok = (identical and not detection["survivors"]
          and detection["rate"] == 1.0)
    return {
        "scope": f"family {spec.digest()[:12]} "
                 f"({spec.blocks}x{spec.modules_per_block}, "
                 f"width {spec.datapath_width})",
        "schema": serial_record["schema"],
        "host": _host_topology(workers),
        "mutants": detection["total"],
        "detection_rate": detection["rate"],
        "survivors": detection["survivors"],
        "seconds": {"serial": round(serial_s, 3),
                    "work_stealing": round(stealing_s, 3)},
        "time_to_fail_per_engine": engines,
        "outcomes_identical": identical,
        "ok": ok,
    }


def _bench_coi():
    """Cone-addressing sweep probe: the fixed bench family crossed
    with its datapath-heavy defect classes, swept twice from an empty
    cache — cold (nothing to reuse), then cone-warm (``--warm-golden``
    semantics: the golden modules pre-run against the same cache, so
    every mutant job whose cone the defect missed is a hit by
    construction).

    The gate is the tentpole claim: the warm sweep must execute at
    least 3x fewer mutant-campaign jobs than the cold one, with a
    nonzero cone hit rate and a byte-identical record digest — cone
    addressing moves cost, never outcomes.
    """
    from repro.scenario import FamilySpec, run_sweep
    from repro.scenario.sweep import record_digest

    spec = FamilySpec(blocks=1, modules_per_block=2, datapath_width=4,
                      pipeline_depth=1, error_report_width=2)
    classes = ["wrong-rotate", "swapped-operand", "dropped-error-flag"]
    limits = dict(sat_conflicts=1_000_000, bdd_nodes=10_000_000)

    with tempfile.TemporaryDirectory(prefix="bench_coi_") as cache_dir:
        config = CampaignConfig(
            coi_fingerprints="cone", coi_slice=True,
            cache_path=os.path.join(cache_dir, "verdicts.json"),
            **limits)
        started = time.perf_counter()
        cold_record, _ = run_sweep(spec, classes=classes, config=config)
        cold_s = time.perf_counter() - started
        os.remove(config.cache_path)
        started = time.perf_counter()
        warm_record, _ = run_sweep(spec, classes=classes, config=config,
                                   warm_golden=True)
        warm_s = time.perf_counter() - started

    cold_t, warm_t = cold_record["timing"], warm_record["timing"]
    golden = warm_t["golden"]
    identical = record_digest(cold_record) == record_digest(warm_record)
    executed_ratio = cold_t["jobs_executed"] / warm_t["jobs_executed"] \
        if warm_t["jobs_executed"] else float(cold_t["jobs_executed"])
    hit_rate = warm_t["cone_hits"] / warm_t["jobs"] \
        if warm_t["jobs"] else 0.0

    print(f"  sweep cold:         {cold_s:7.2f}s "
          f"({cold_t['jobs_executed']} of {cold_t['jobs']} jobs "
          f"executed)")
    print(f"  sweep cone-warm:    {warm_s:7.2f}s "
          f"({warm_t['jobs_executed']} of {warm_t['jobs']} jobs "
          f"executed + {golden['jobs_executed']} golden pre-run, "
          f"{warm_t['cone_hits']} cone hits, "
          f"hit rate {hit_rate:.2f})")
    print(f"  executed ratio:     {executed_ratio:.2f}x fewer "
          f"mutant-campaign jobs warm")
    if not identical:
        print("  WARNING: warm-golden sweep changed the record digest!")
    ok = (identical and warm_t["cone_hits"] > 0
          and executed_ratio >= 3.0)
    return {
        "scope": f"family {spec.digest()[:12]} "
                 f"(classes {','.join(classes)})",
        "host": _host_topology(),
        "jobs": cold_t["jobs"],
        "jobs_executed": {"cold": cold_t["jobs_executed"],
                          "cone_warm": warm_t["jobs_executed"],
                          "golden_prerun": golden["jobs_executed"]},
        "cone_hits": warm_t["cone_hits"],
        "cone_hit_rate": round(hit_rate, 3),
        "executed_ratio": round(executed_ratio, 2),
        "seconds": {"cold": round(cold_s, 3),
                    "cone_warm": round(warm_s, 3)},
        "record_digest_identical": identical,
        "ok": ok,
    }


def _bench_fleet(workers):
    """Socket-fanout probe on the fixed block-C scope: the local
    ``FleetExecutor`` vs serial — byte-identical outcome plus the
    transport bookkeeping (per-worker job counts, leases) — and a
    faulted leg that SIGKILLs a worker after the first result, proving
    a lost worker costs lease re-issue and recovery time, never a
    changed verdict."""
    from repro.orchestrate import (
        FleetExecutor, ModuleAffinityScheduling,
    )
    from repro.orchestrate.fleet import LocalFleetLauncher

    chip = ComponentChip(only_blocks=["C"])
    config = CampaignConfig(sat_conflicts=1_000_000,
                            bdd_nodes=10_000_000)
    serial_report, serial_s = _timed_run(chip.blocks)
    print(f"  serial baseline:    {serial_s:7.2f}s "
          f"({serial_report.total_properties} properties)")

    fleet_report, fleet_s = _timed_run(
        chip.blocks,
        executor=FleetExecutor(workers=workers,
                               scheduling=ModuleAffinityScheduling()),
    )
    healthy = fleet_report.stats["fleet"]
    healthy_identical = (fleet_report.canonical_bytes()
                         == serial_report.canonical_bytes())
    print(f"  fleet cold:         {fleet_s:7.2f}s "
          f"({healthy['workers_launched']} workers, "
          f"jobs {healthy['jobs_per_worker']})")

    class _Tracking(LocalFleetLauncher):
        def __init__(self):
            self.handles = []

        def launch(self, *args, **kwargs):
            handle = super().launch(*args, **kwargs)
            self.handles.append(handle)
            return handle

    launcher = _Tracking()
    killed = []

    def _kill_one(line):
        if not killed and launcher.handles:
            os.kill(launcher.handles[0].pid, signal.SIGKILL)
            killed.append(True)

    started = time.perf_counter()
    faulted_report = CampaignOrchestrator(
        chip.blocks, config=config,
        executor=FleetExecutor(workers=workers, launcher=launcher,
                               scheduling=ModuleAffinityScheduling()),
    ).run(progress=_kill_one)
    faulted_s = time.perf_counter() - started
    faulted = faulted_report.stats["fleet"]
    faulted_identical = (faulted_report.canonical_bytes()
                        == serial_report.canonical_bytes())
    print(f"  fleet + SIGKILL:    {faulted_s:7.2f}s "
          f"({faulted['workers_lost']} lost, "
          f"{faulted['leases_reissued']} leases re-issued, "
          f"recovery {faulted_s - fleet_s:+.2f}s vs healthy)")

    return {
        "host": _host_topology(workers),
        "scope": "blocks C",
        "properties": serial_report.total_properties,
        "workers": workers,
        "seconds": {
            "serial_cold": round(serial_s, 3),
            "fleet_cold": round(fleet_s, 3),
            "fleet_worker_sigkill": round(faulted_s, 3),
        },
        "speedup_vs_serial": round(serial_s / fleet_s, 2),
        "healthy": {
            "workers_launched": healthy["workers_launched"],
            "leases_issued": healthy["leases_issued"],
            "leases_reissued": healthy["leases_reissued"],
            "results_rejected": healthy["results_rejected"],
            "jobs_per_worker": healthy["jobs_per_worker"],
        },
        "worker_sigkill": {
            "workers_launched": faulted["workers_launched"],
            "workers_lost": faulted["workers_lost"],
            "leases_reissued": faulted["leases_reissued"],
            "results_rejected": faulted["results_rejected"],
            "jobs_per_worker": faulted["jobs_per_worker"],
            "recovery_overhead_seconds": round(faulted_s - fleet_s, 3),
        },
        "outcomes_identical": healthy_identical and faulted_identical,
    }


def _truncate_journal(path, keep_fraction):
    """Keep the header plus the first ``keep_fraction`` of the entries —
    the on-disk state of a campaign killed partway through."""
    lines = pathlib.Path(path).read_text().splitlines()
    header, entries = lines[0], lines[1:]
    kept = entries[: int(len(entries) * keep_fraction)]
    pathlib.Path(path).write_text("\n".join([header] + kept) + "\n")
    return len(kept)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true",
                        help="benchmark the whole 2047-property chip")
    parser.add_argument("--blocks", default="A,C",
                        help="comma-separated block subset (default A,C)")
    parser.add_argument("--jobs", type=int, default=None,
                        help="worker processes for the pool runs "
                             "(default: max(2, CPU count))")
    parser.add_argument("--smoke", action="store_true",
                        help="reduced CI mode: compile-store probe "
                             "only, gated exit code")
    args = parser.parse_args()

    if args.smoke:
        workers = args.jobs or max(2, os.cpu_count() or 1)
        print(f"compile-store smoke probe ({workers} pool workers)")
        record = _bench_compile_store(workers)
        print("sat-workspace smoke probe (cold vs warm, serial)")
        sat_record = _bench_sat_workspace()
        out_path = OUT_PATH.parent / "BENCH_campaign_smoke.json"
        out_path.parent.mkdir(exist_ok=True)
        out_path.write_text(json.dumps(
            {"benchmark": "campaign_smoke",
             "stats_schema": STATS_SCHEMA,
             "host": _host_topology(workers),
             "compile_store": record,
             "sat_workspace": sat_record}, indent=2) + "\n")
        print(f"  perf record -> {out_path}")
        if not record["ok"]:
            print("  FAIL: compile store did not beat store-off "
                  "(hits, elaborations, or throughput regressed)")
        if not sat_record["ok"]:
            print("  FAIL: shared SAT workspace did not earn its keep "
                  "(identity, counters, or effort ratio regressed)")
        return 0 if record["ok"] and sat_record["ok"] else 1

    only = None if args.full else args.blocks.split(",")
    chip = ComponentChip(only_blocks=only)
    scope = "full chip" if args.full else f"blocks {','.join(only)}"
    workers = args.jobs or max(2, os.cpu_count() or 1)

    print(f"campaign smoke benchmark over {scope} "
          f"({workers} pool workers)")

    serial_report, serial_s = _timed_run(chip.blocks)
    print(f"  serial cold:        {serial_s:7.2f}s "
          f"({serial_report.total_properties} properties)")

    # campaigns default to share_bdd=True, and explicit executor
    # objects bypass the config — opt the pools in so the serial/pool
    # comparison stays like-for-like on workspace sharing
    parallel_report, parallel_s = _timed_run(
        chip.blocks,
        executor=ParallelExecutor(processes=workers, share_bdd=True),
    )
    print(f"  parallel cold:      {parallel_s:7.2f}s "
          f"({parallel_report.stats['executor']})")

    stealing_report, stealing_s = _timed_run(
        chip.blocks,
        executor=WorkStealingExecutor(processes=workers,
                                      share_bdd=True),
    )
    print(f"  work-stealing cold: {stealing_s:7.2f}s "
          f"({stealing_report.stats['executor']})")

    with tempfile.TemporaryDirectory(prefix="bench_cache_") as cache_dir:
        cache_path = os.path.join(cache_dir, "results.json")
        _timed_run(chip.blocks, cache=ResultCache(cache_path))
        warm_report, warm_s = _timed_run(chip.blocks,
                                         cache=ResultCache(cache_path))
    print(f"  warm cache:         {warm_s:7.2f}s "
          f"({warm_report.stats['cache_hits']} hits, "
          f"{warm_report.stats['cache_misses']} misses)")

    with tempfile.TemporaryDirectory(prefix="bench_ckpt_") as ckpt_dir:
        journal_path = os.path.join(ckpt_dir, "campaign.journal")
        checkpointed_report, checkpointed_s = _timed_run(
            chip.blocks, checkpoint=CampaignCheckpoint(journal_path)
        )
        print(f"  checkpointed cold:  {checkpointed_s:7.2f}s "
              f"(journaling overhead "
              f"{checkpointed_s - serial_s:+.2f}s vs serial)")
        kept = _truncate_journal(journal_path, 0.5)
        resumed_report, resumed_s = _timed_run(
            chip.blocks, checkpoint=CampaignCheckpoint(journal_path),
            resume=True,
        )
        print(f"  resumed half-way:   {resumed_s:7.2f}s "
              f"({resumed_report.stats['journal_replayed']} of "
              f"{resumed_report.total_properties} replayed from "
              f"{kept} journal entries)")

    workspace_record = _bench_workspace()
    adaptive_record = _bench_adaptive()
    compile_record = _bench_compile_store(workers)
    sat_record = _bench_sat_workspace()
    print("scenario-sweep probe (serial vs work-stealing)")
    scenario_record = _bench_scenario(workers)
    print("cone-addressing probe (cold vs warm-golden cone sweep)")
    coi_record = _bench_coi()
    print("fleet-transport probe (serial vs local socket fleet, "
          "healthy and worker-SIGKILL)")
    fleet_record = _bench_fleet(workers)

    reports = {
        "serial": serial_report, "parallel": parallel_report,
        "work_stealing": stealing_report, "warm": warm_report,
        "checkpointed": checkpointed_report, "resumed": resumed_report,
    }
    reference = serial_report.canonical_bytes()
    mismatched = [name for name, report in reports.items()
                  if report.canonical_bytes() != reference]
    from repro.core.report import format_table2
    tables_identical = all(
        format_table2(report) == format_table2(serial_report)
        for report in reports.values()
    )
    outcomes_identical = not mismatched
    if not tables_identical or not outcomes_identical:
        print(f"  WARNING: executors disagreed! mismatched={mismatched} "
              f"tables_identical={tables_identical}")

    record = {
        "benchmark": "campaign_orchestrator",
        "stats_schema": STATS_SCHEMA,
        "scope": scope,
        "properties": serial_report.total_properties,
        "host": _host_topology(workers),
        "cpu_count": os.cpu_count(),
        "pool_workers": workers,
        "parallel_mode": parallel_report.stats["executor"],
        "work_stealing_mode": stealing_report.stats["executor"],
        "seconds": {
            "serial_cold": round(serial_s, 3),
            "parallel_cold": round(parallel_s, 3),
            "work_stealing_cold": round(stealing_s, 3),
            "warm_cache": round(warm_s, 3),
            "checkpointed_cold": round(checkpointed_s, 3),
            "resumed_half": round(resumed_s, 3),
        },
        "speedup": {
            "parallel_vs_serial": round(serial_s / parallel_s, 2),
            "work_stealing_vs_serial": round(serial_s / stealing_s, 2),
            "warm_vs_serial": round(serial_s / warm_s, 2),
            "resumed_half_vs_cold": round(
                checkpointed_s / resumed_s, 2
            ),
        },
        "cache": {
            "hits": warm_report.stats["cache_hits"],
            "misses": warm_report.stats["cache_misses"],
        },
        "resume": {
            "journal_replayed": resumed_report.stats["journal_replayed"],
            "checkpoint_overhead_seconds": round(
                checkpointed_s - serial_s, 3
            ),
        },
        "tables_identical": tables_identical,
        "outcomes_identical": outcomes_identical,
        # the serial run's counters in the one versioned shape the CLI
        # --stats printer and the service /metrics endpoint also serve
        "counter_groups": counter_groups(serial_report.stats),
        "shared_workspace": workspace_record,
        "adaptive_portfolio": adaptive_record,
        "compile_store": compile_record,
        "sat_workspace": sat_record,
        "scenario_sweep": scenario_record,
        "coi_cone_warm": coi_record,
        "fleet_transport": fleet_record,
    }
    OUT_PATH.parent.mkdir(exist_ok=True)
    OUT_PATH.write_text(json.dumps(record, indent=2) + "\n")
    print(f"  perf record -> {OUT_PATH}")
    all_identical = (tables_identical and outcomes_identical
                     and workspace_record["outcomes_identical"]
                     and adaptive_record["outcomes_identical"]
                     and compile_record["outcomes_identical"]
                     and sat_record["outcomes_identical"]
                     and scenario_record["ok"]
                     and coi_record["ok"]
                     and fleet_record["outcomes_identical"])
    return 0 if all_identical else 1


if __name__ == "__main__":
    sys.exit(main())
