"""Table 1 — chip implementation overview.

The paper's Table 1 describes the physical chip (12.8 x 12.5 mm², 0.11 µm
CMOS, 3.5M gates, 250 MHz).  Our analogue reports the synthetic chip's
implementation statistics: leaf modules, state bits, gate-equivalent
logic size and the integrity-checkpoint population (the ">1300
checkpoints" that motivated the formal scope).  Absolute sizes are not
comparable — the substitution keeps per-leaf structure, not die area —
but the checkpoint population and block structure are exact.
"""

from repro.chip import ComponentChip, TOTAL_CHECKPOINTS, TOTAL_SUBMODULES
from repro.core.report import render_table



def build_and_measure():
    chip = ComponentChip.golden()
    return chip, chip.stats()


def test_table1_chip_overview(benchmark, publish):
    chip, stats = benchmark.pedantic(build_and_measure, rounds=1,
                                     iterations=1)

    assert stats.leaf_modules == TOTAL_SUBMODULES
    assert stats.detection_checkpoints == TOTAL_CHECKPOINTS
    assert stats.detection_checkpoints > 1300   # the paper's motivation
    assert stats.gate_equivalents > 0
    assert stats.core_frequency_mhz == 250.0

    rows = [["Item", "Paper chip", "Synthetic chip"]]
    paper = {
        "Chip die size": "12.8 x 12.5 mm2",
        "Technology": "0.11 um CMOS ASIC",
        "Logic size": "3.5M gates",
        "Core frequency": "250MHz",
        "Leaf modules in formal scope": "95",
        "Integrity checkpoints": "> 1300",
    }
    ours = {
        "Chip die size": "(modelled at gate level only)",
        "Technology": "cell-library model (repro.synth)",
        "Logic size": f"{stats.gate_equivalents / 1000:.0f} kGE "
                      f"(campaign views)",
        "Core frequency": f"{stats.core_frequency_mhz:.0f}MHz",
        "Leaf modules in formal scope": str(stats.leaf_modules),
        "Integrity checkpoints": str(stats.detection_checkpoints),
    }
    table = render_table(
        ["Item", "Paper chip", "Synthetic chip"],
        [[key, paper[key], ours[key]] for key in paper],
    )
    extra = f"\nState bits across all leaves: {stats.state_bits}"
    publish("table1_chip", table + extra)

    benchmark.extra_info["leaf_modules"] = stats.leaf_modules
    benchmark.extra_info["checkpoints"] = stats.detection_checkpoints
