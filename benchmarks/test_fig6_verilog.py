"""Figure 6 — Verifiable RTL in Verilog.

Applies the error-injection transform to the canonical leaf module,
wraps it with the tie-off upper module, emits both as Verilog, and
checks the figure's signature constructs: per-entity injection steering
in the always blocks and zero-tied injection ports in the wrapper.
"""

import re

from repro.chip.library import canonical_leaf
from repro.rtl.inject import make_verifiable, make_wrapper
from repro.rtl.lint import lint_verifiable, lint_wrapper
from repro.rtl.verilog import emit_hierarchy



def generate():
    verifiable = make_verifiable(canonical_leaf("B"))
    wrapper = make_wrapper(verifiable, wrapper_name="A",
                           inst_name="B_in_A")
    return verifiable, wrapper, emit_hierarchy(wrapper)


def test_figure6_verifiable_rtl(benchmark, publish):
    verifiable, wrapper, text = benchmark.pedantic(generate, rounds=1,
                                                   iterations=1)

    # the Verifiable-RTL requirements hold (lint clean)
    assert lint_verifiable(verifiable) == []
    assert lint_wrapper(wrapper) == []

    # leaf module declares the injection inputs (Figure 6, module B)
    assert re.search(r"input \[1:0\] I_ERR_INJ_C;", text)
    assert re.search(r"input \[8:0\] I_ERR_INJ_D;", text)

    # wrapper ties them to zero (Figure 6, module A)
    assert ".I_ERR_INJ_C(2'b00)" in text
    assert ".I_ERR_INJ_D(9'b000000000)" in text

    # registers reset like the figure's always blocks
    assert "always @(posedge CK or posedge RESET)" in text
    assert re.search(r"if \(RESET\) A <= 4'b", text)
    assert re.search(r"if \(RESET\) B <= 9'b", text)

    publish("fig6_verilog", text)
    benchmark.extra_info["verilog_lines"] = text.count("\n") + 1
