"""Table 2 — number of verified properties (the headline experiment).

Runs the complete formal campaign: all 2047 PSL assertions over the 95
leaf modules of the golden chip (every one must PASS), then attributes
the seven logic bugs by re-checking the defective modules of the
pre-fix chip.  The printed table carries exactly the paper's columns;
the §6.1 batch-feasibility narrative (X1: "about 20 hours on a single
CPU") becomes the measured wall-clock total.
"""

import pytest

from repro.chip import ComponentChip, DEFECTS, TABLE2_BUGS, TABLE2_TARGETS
from repro.core.campaign import FormalCampaign
from repro.core.report import format_status_summary, format_table2
from repro.core.stereotypes import stereotype_vunits
from repro.formal.budget import ResourceBudget
from repro.formal.engine import FAIL, ModelChecker
from repro.psl.compile import compile_assertion



def _budget():
    return ResourceBudget(sat_conflicts=1_000_000, bdd_nodes=10_000_000)


def run_full_campaign():
    chip = ComponentChip.golden()
    campaign = FormalCampaign(chip.blocks, budget_factory=_budget)
    return campaign.run()


def attribute_bugs():
    """Check only the defective modules of the pre-fix chip (the rest
    of the chip is identical to the golden run)."""
    chip = ComponentChip.with_all_defects()
    found = {}
    for defect in DEFECTS:
        module = chip.module_named(defect.module_name)
        for unit in stereotype_vunits(module):
            for assert_name, _ in unit.asserted():
                ts = compile_assertion(module, unit, assert_name)
                result = ModelChecker(ts, _budget()).check()
                if result.status == FAIL:
                    found.setdefault(defect.defect_id, []).append(
                        (defect.block, f"{unit.name}.{assert_name}")
                    )
    return found


def test_table2_full_campaign(benchmark, publish):
    report = benchmark.pedantic(run_full_campaign, rounds=1, iterations=1)

    # every property verified successfully (paper: "all properties were
    # verified successfully")
    assert report.all_passed, report.by_status("fail")[:5]
    assert report.total_properties == 2047

    # per-block structure matches Table 2 exactly
    for block, (subs, p0, p1, p2, p3) in TABLE2_TARGETS.items():
        summary = report.blocks[block]
        assert summary.submodules == subs, block
        assert (summary.p0, summary.p1, summary.p2, summary.p3) == \
            (p0, p1, p2, p3), block

    # bug attribution on the pre-fix chip
    found = attribute_bugs()
    assert set(found) == {d.defect_id for d in DEFECTS}
    bugs_per_block = {}
    for defect in DEFECTS:
        bugs_per_block[defect.block] = bugs_per_block.get(defect.block, 0) + 1
    for block, count in TABLE2_BUGS.items():
        assert bugs_per_block.get(block, 0) == count, block
        report.blocks[block].bugs = count

    table = format_table2(report)
    summary = format_status_summary(report)
    x1 = (f"\nX1 batch feasibility: paper ~20 h on a 2004 workstation "
          f"(single CPU, single licence); measured "
          f"{report.seconds / 60:.1f} min for all 2047 assertions on "
          f"this machine.")
    publish("table2_properties", table + "\n\n" + summary + x1)

    benchmark.extra_info["properties"] = report.total_properties
    benchmark.extra_info["seconds"] = round(report.seconds, 1)
