"""Figure 7 — divide-and-conquer property partitioning.

The output-integrity property of the wide merge datapath exhausts a
fixed BDD-node quota when checked monolithically (the paper's
time-out), while after manual division at the internal parity
checkpoints A', B', C' every piece passes comfortably inside the *same*
quota.
"""

from repro.chip.library import fig7_cut_registers, fig7_module
from repro.core.partition import partition_property
from repro.core.report import render_table
from repro.core.stereotypes import integrity_vunit
from repro.formal.budget import ResourceBudget
from repro.formal.engine import PASS, TIMEOUT, ModelChecker
from repro.psl.compile import compile_assertion
from repro.rtl.inject import make_verifiable

#: the engine's per-property resource quota (BDD nodes)
NODE_QUOTA = 400_000



def run_experiment():
    module = make_verifiable(fig7_module())
    unit = integrity_vunit(module)
    assert_name = unit.asserted()[0][0]

    records = []

    monolithic_ts = compile_assertion(module, unit, assert_name)
    budget = ResourceBudget(bdd_nodes=NODE_QUOTA)
    result = ModelChecker(monolithic_ts, budget).check(
        method="bdd-forward"
    )
    records.append(("monolithic " + assert_name, monolithic_ts, result,
                    budget))

    plan = partition_property(module, unit, assert_name,
                              fig7_cut_registers(module))
    for piece in plan.pieces:
        budget = ResourceBudget(bdd_nodes=NODE_QUOTA)
        result = ModelChecker(piece.ts, budget).check(
            method="bdd-forward"
        )
        records.append((piece.name, piece.ts, result, budget))
    return records


def test_figure7_divide_and_conquer(benchmark, publish):
    records = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    monolithic = records[0]
    pieces = records[1:]

    # the monolithic check exhausts the quota — the paper's time-out
    assert monolithic[2].status == TIMEOUT
    # ... and every divided piece passes inside the same quota
    for name, ts, result, budget in pieces:
        assert result.status == PASS, name
        assert budget.spent_nodes < NODE_QUOTA

    # the division shrinks each piece's cone
    whole_latches = monolithic[1].size_stats()["latches"]
    for name, ts, _, _ in pieces:
        assert ts.size_stats()["latches"] < whole_latches

    rows = []
    for name, ts, result, budget in records:
        stats = ts.size_stats()
        rows.append([
            name, stats["latches"], stats["ands"],
            result.status.upper(), f"{budget.spent_nodes:,}",
        ])
    table = render_table(
        ["Problem", "Latches", "ANDs", "Verdict", "BDD nodes used"],
        rows,
    )
    note = (f"\nResource quota: {NODE_QUOTA:,} BDD nodes per check "
            f"(the deterministic analogue of the paper's tool "
            f"time-out).")
    publish("fig7_partition", table + note)

    benchmark.extra_info["quota"] = NODE_QUOTA
