"""Table 4 — design impact of the error-injection feature.

Synthesises implementation-scale views of representative modules of
blocks A, B and D with and without the Verifiable-RTL transform and
reports the area increase, plus the paper's delay analysis: the
injection selector (MUX2) costs ~200 ps, about 5% of the 4 ns cycle at
250 MHz, and causes no timing-closure issue.
"""

import pytest

from repro.chip import TABLE4_PAPER, table4_modules
from repro.core.report import render_table
from repro.synth import (
    CLOCK_PERIOD_PS, LIBRARY, area_increase, selector_impact,
)



def measure():
    rows = {}
    for block, (base, verifiable) in table4_modules().items():
        rows[block] = (
            area_increase(base, verifiable),
            selector_impact(base, verifiable),
        )
    return rows


def test_table4_area_and_delay(benchmark, publish):
    rows = benchmark.pedantic(measure, rounds=1, iterations=1)

    table_rows = []
    for block in ("A", "B", "D"):
        increase, timing = rows[block]
        # the paper's claim: area increase is less than 2%
        assert increase.percent < 2.0, block
        assert increase.added_muxes > 0
        # the added delay never exceeds one selector, and timing closes
        assert timing.added_delay_ps <= LIBRARY["MUX2"].delay + 1e-9
        assert timing.closes_timing
        table_rows.append([
            block,
            f"{increase.base.gate_equivalents:,.0f} GE",
            f"+{increase.percent:.2f} %",
            f"{TABLE4_PAPER[block]:.1f} %",
            increase.added_muxes,
        ])

    # overhead ordering follows the paper: A > B > D (bigger modules
    # amortise the selectors better)
    percents = [rows[b][0].percent for b in ("A", "B", "D")]
    assert percents[0] > percents[1] > percents[2]

    selector = rows["A"][1]
    assert selector.selector_delay_ps == pytest.approx(200.0)
    assert 4.0 <= selector.selector_percent_of_cycle <= 6.0

    table = render_table(
        ["Module", "Base area", "Area increase", "Paper", "Selectors added"],
        table_rows,
    )
    delay_note = (
        f"\nSelector delay: {selector.selector_delay_ps:.0f} ps = "
        f"{selector.selector_percent_of_cycle:.1f}% of the "
        f"{CLOCK_PERIOD_PS / 1000:.0f} ns cycle at 250 MHz "
        f"(paper: ~200 ps, ~4%); all modules close timing."
    )
    publish("table4_area", table + delay_note)

    benchmark.extra_info["percents"] = [round(p, 2) for p in percents]
